// ECO edit API and incremental subtree-hash maintenance
// (tree/routing_tree.hpp): every apply_edit must leave the lazily maintained
// hashes bit-identical to a from-scratch recompute, and the degenerate shapes
// (single node, 10k-deep chain, duplicate sink locations) must be safe.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "tree/generators.hpp"
#include "tree/routing_tree.hpp"
#include "tree/tree_io.hpp"

namespace vabi::tree {
namespace {

routing_tree small_random(std::uint64_t seed, std::size_t sinks = 40) {
  random_tree_options o;
  o.num_sinks = sinks;
  o.die_side_um = 4000.0;
  o.seed = seed;
  return make_random_tree(o);
}

/// Reference: dirty the cache (mutable node access invalidates it), forcing
/// the next subtree_hash call into the full O(n) recompute.
std::uint64_t full_recompute_root_hash(routing_tree& t) {
  t.node(t.root());
  return t.subtree_hash(t.root());
}

std::vector<std::uint64_t> all_hashes(const routing_tree& t) {
  std::vector<std::uint64_t> h;
  h.reserve(t.num_nodes());
  for (node_id id = 0; id < t.num_nodes(); ++id) {
    h.push_back(t.subtree_hash(id));
  }
  return h;
}

TEST(TreeEdit, MoveSinkIncrementalHashMatchesFullRecompute) {
  auto t = small_random(11);
  const auto sinks = t.sinks();
  const node_id victim = sinks[sinks.size() / 2];
  const std::uint64_t before = t.subtree_hash(t.root());

  t.apply_edit(tree_edit::move_sink(victim, {123.0, 456.0}));
  const std::uint64_t incremental = t.subtree_hash(t.root());
  EXPECT_NE(incremental, before);
  EXPECT_EQ(incremental, full_recompute_root_hash(t));
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.node(victim).location, (layout::point{123.0, 456.0}));
}

TEST(TreeEdit, MoveSinkDefaultWireIsManhattan) {
  auto t = small_random(12);
  const node_id victim = t.sinks().front();
  const node_id parent = t.node(victim).parent;
  t.apply_edit(tree_edit::move_sink(victim, {500.0, 700.0}));
  const auto& p = t.node(parent).location;
  EXPECT_DOUBLE_EQ(t.node(victim).parent_wire_um,
                   std::abs(p.x - 500.0) + std::abs(p.y - 700.0));

  t.apply_edit(tree_edit::move_sink(victim, {600.0, 800.0}, 42.0));
  EXPECT_DOUBLE_EQ(t.node(victim).parent_wire_um, 42.0);
  EXPECT_EQ(t.subtree_hash(t.root()), full_recompute_root_hash(t));
}

TEST(TreeEdit, RetargetRatOnlyTouchesRootPath) {
  auto t = small_random(13);
  const auto sinks = t.sinks();
  const node_id victim = sinks.back();
  const auto before = all_hashes(t);

  t.apply_edit(tree_edit::retarget_rat(victim, -250.0));
  EXPECT_DOUBLE_EQ(t.node(victim).sink_rat_ps, -250.0);
  const auto after = all_hashes(t);

  // Exactly the victim's root path changed; every other subtree is intact.
  std::vector<bool> on_path(t.num_nodes(), false);
  for (node_id id = victim; id != invalid_node; id = t.node(id).parent) {
    on_path[id] = true;
  }
  for (node_id id = 0; id < t.num_nodes(); ++id) {
    if (on_path[id]) {
      EXPECT_NE(after[id], before[id]) << "path node " << id;
    } else {
      EXPECT_EQ(after[id], before[id]) << "off-path node " << id;
    }
  }
  EXPECT_EQ(t.subtree_hash(t.root()), full_recompute_root_hash(t));
}

TEST(TreeEdit, ResizeWireInvalidatesAncestorsOnly) {
  auto t = small_random(14);
  // Pick an internal node with children (not root).
  node_id victim = invalid_node;
  for (node_id id = 1; id < t.num_nodes(); ++id) {
    if (!t.node(id).children.empty()) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, invalid_node);
  const std::uint64_t sub_before = t.subtree_hash(victim);

  t.apply_edit(tree_edit::resize_wire(victim, 999.0));
  EXPECT_DOUBLE_EQ(t.node(victim).parent_wire_um, 999.0);
  // The wire above `victim` is hashed at the parent, so the victim's own
  // subtree hash is untouched -- the invalidation stops strictly above it.
  EXPECT_EQ(t.subtree_hash(victim), sub_before);
  EXPECT_EQ(t.subtree_hash(t.root()), full_recompute_root_hash(t));
}

TEST(TreeEdit, PruneThenGraftBackRestoresEverything) {
  auto t = small_random(15);
  // Graft appends to the parent's child list, so exact hash restoration
  // needs a victim that already is the *last* child of its parent; pick one
  // under a branching node so the rest of the tree keeps attached sinks.
  node_id victim = invalid_node;
  for (const node_id id : t.postorder()) {
    if (t.node(id).children.size() >= 2) {
      victim = t.node(id).children.back();
      break;
    }
  }
  ASSERT_NE(victim, invalid_node);
  const node_id parent = t.node(victim).parent;
  const double wire = t.node(victim).parent_wire_um;
  const std::uint64_t root_before = t.subtree_hash(t.root());
  const std::size_t sinks_before = t.num_sinks();
  const std::size_t positions_before = t.num_buffer_positions();
  const std::size_t sub = t.subtree_size(victim);

  t.apply_edit(tree_edit::prune_subtree(victim));
  EXPECT_TRUE(t.has_detached());
  EXPECT_EQ(t.num_detached(), sub);
  EXPECT_EQ(t.num_buffer_positions(), positions_before - sub);
  EXPECT_LT(t.num_sinks(), sinks_before);
  EXPECT_TRUE(t.node(victim).detached);
  EXPECT_EQ(t.node(victim).parent, invalid_node);
  EXPECT_NO_THROW(t.validate());
  // Detached nodes drop out of the traversals.
  for (const node_id id : t.postorder()) {
    EXPECT_FALSE(t.node(id).detached);
  }
  // The serialized format cannot express detached subtrees.
  EXPECT_THROW(write_tree_to_string(t), std::invalid_argument);

  t.apply_edit(tree_edit::graft_subtree(victim, parent, wire));
  EXPECT_FALSE(t.has_detached());
  EXPECT_EQ(t.num_sinks(), sinks_before);
  EXPECT_EQ(t.num_buffer_positions(), positions_before);
  EXPECT_NO_THROW(t.validate());
  // Same parent, same wire, same child order (victim was the last child):
  // the content hash must be restored exactly.
  EXPECT_EQ(t.subtree_hash(t.root()), root_before);
  EXPECT_EQ(t.subtree_hash(t.root()), full_recompute_root_hash(t));
}

TEST(TreeEdit, GraftToNewParentChangesHash) {
  auto t = small_random(16);
  const auto sinks = t.sinks();
  const node_id victim = sinks.back();
  const std::uint64_t before = t.subtree_hash(t.root());

  t.apply_edit(tree_edit::prune_subtree(victim));
  // Re-attach directly under the root (anti-cycle invariant: parent id must
  // be smaller than the grafted node's id -- the root always qualifies).
  t.apply_edit(tree_edit::graft_subtree(victim, t.root()));
  EXPECT_NO_THROW(t.validate());
  EXPECT_NE(t.subtree_hash(t.root()), before);
  EXPECT_EQ(t.subtree_hash(t.root()), full_recompute_root_hash(t));
  EXPECT_DOUBLE_EQ(
      t.node(victim).parent_wire_um,
      std::abs(t.node(victim).location.x - t.node(t.root()).location.x) +
          std::abs(t.node(victim).location.y - t.node(t.root()).location.y));
}

TEST(TreeEdit, InvalidEditsThrow) {
  auto t = small_random(17);
  node_id steiner = invalid_node;
  for (node_id id = 1; id < t.num_nodes(); ++id) {
    if (!t.node(id).is_sink()) {
      steiner = id;
      break;
    }
  }
  ASSERT_NE(steiner, invalid_node);
  const node_id sink = t.sinks().front();

  // Sink-only ops on non-sinks.
  EXPECT_THROW(t.apply_edit(tree_edit::move_sink(steiner, {0, 0})),
               std::logic_error);
  EXPECT_THROW(t.apply_edit(tree_edit::retarget_rat(steiner, 1.0)),
               std::logic_error);
  // Source cannot be rewired or pruned.
  EXPECT_THROW(t.apply_edit(tree_edit::resize_wire(t.root(), 1.0)),
               std::logic_error);
  EXPECT_THROW(t.apply_edit(tree_edit::prune_subtree(t.root())),
               std::logic_error);
  // Negative wire length.
  EXPECT_THROW(t.apply_edit(tree_edit::resize_wire(sink, -1.0)),
               std::invalid_argument);
  // Graft of a node that is not a detached root.
  EXPECT_THROW(t.apply_edit(tree_edit::graft_subtree(sink, t.root())),
               std::logic_error);

  t.apply_edit(tree_edit::prune_subtree(sink));
  // Double prune; ops on detached nodes; graft under a sink / larger id.
  EXPECT_THROW(t.apply_edit(tree_edit::prune_subtree(sink)), std::logic_error);
  EXPECT_THROW(t.apply_edit(tree_edit::resize_wire(sink, 1.0)),
               std::logic_error);
  node_id other_sink = invalid_node;
  for (const node_id s : t.sinks()) {
    if (s != sink) other_sink = s;
  }
  ASSERT_NE(other_sink, invalid_node);
  EXPECT_THROW(t.apply_edit(tree_edit::graft_subtree(sink, other_sink)),
               std::logic_error);
  // Hash cache stays coherent through the failed edits.
  EXPECT_EQ(t.subtree_hash(t.root()), full_recompute_root_hash(t));
}

TEST(TreeEdit, SingleNodeTree) {
  routing_tree t({100.0, 100.0});
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.num_sinks(), 0u);
  EXPECT_EQ(t.num_buffer_positions(), 0u);
  // Hashing a sourceless-only tree is well defined...
  EXPECT_NE(t.subtree_hash(t.root()), 0u);
  EXPECT_EQ(t.subtree_size(t.root()), 1u);
  EXPECT_TRUE(t.postorder().size() == 1);
  // ...but it is not a solvable instance.
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(TreeEdit, DeepChainTenThousandIsIterative) {
  chain_options o;
  o.segments = 10'000;  // recursion here would overflow the stack
  auto t = make_chain(o);
  ASSERT_EQ(t.num_nodes(), o.segments + 1);
  EXPECT_EQ(t.postorder().size(), t.num_nodes());
  t.ensure_subtree_hashes();
  const std::uint64_t before = t.subtree_hash(t.root());

  // Edit at the deep end: the incremental rehash walks the full 10k path.
  const node_id sink = t.sinks().front();
  t.apply_edit(tree_edit::retarget_rat(sink, -77.0));
  EXPECT_NE(t.subtree_hash(t.root()), before);
  EXPECT_EQ(t.subtree_hash(t.root()), full_recompute_root_hash(t));
  EXPECT_EQ(t.subtree_size(t.root()), t.num_nodes());
  EXPECT_NO_THROW(t.validate());
}

TEST(TreeEdit, DuplicateSinkLocationsHashEqual) {
  routing_tree t({0.0, 0.0});
  const node_id j = t.add_steiner(t.root(), {50.0, 50.0});
  const node_id a = t.add_sink(j, {50.0, 50.0}, 0.02, -10.0);
  const node_id b = t.add_sink(j, {50.0, 50.0}, 0.02, -10.0);
  EXPECT_NO_THROW(t.validate());
  // Identical content -> identical subtree hashes; co-located sinks get
  // zero-length Manhattan wires.
  EXPECT_EQ(t.subtree_hash(a), t.subtree_hash(b));
  EXPECT_DOUBLE_EQ(t.node(a).parent_wire_um, 0.0);
  EXPECT_DOUBLE_EQ(t.node(b).parent_wire_um, 0.0);
  // The shared hash still distinguishes the *parent* when one moves.
  t.apply_edit(tree_edit::retarget_rat(b, -20.0));
  EXPECT_NE(t.subtree_hash(a), t.subtree_hash(b));
  EXPECT_EQ(t.subtree_hash(t.root()), full_recompute_root_hash(t));
}

}  // namespace
}  // namespace vabi::tree
