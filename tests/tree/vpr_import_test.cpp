// VPR-flavoured netlist importer (tree/vpr_import.hpp): parsing, switch
// lowering, dense renumbering, tree_io round-trips, and solver smoke over
// the library-size extremes.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/van_ginneken.hpp"
#include "timing/buffer_library.hpp"
#include "tree/tree_io.hpp"
#include "tree/vpr_import.hpp"

namespace vabi::tree {
namespace {

const char* k_sample =
    "vpr-rc v1\n"
    "# a 3-sink net with sparse, shuffled ids\n"
    "wire 0.1 0.0002\n"
    "root 40\n"
    "node 40 100 100\n"
    "node 7 200 100\n"
    "node 12 300 50\n"
    "node 9 300 150\n"
    "node 31 250 200\n"
    "edge 7 40 switch 200 5\n"
    "edge 12 7 wire 150\n"
    "edge 9 7 wire 75\n"
    "edge 31 40 wire 180\n"
    "sink 12 0.02 -100\n"
    "sink 9 0.03 -120\n"
    "sink 31 0.01 -90\n";

TEST(VprImport, ParsesSampleAndRenumbersDensely) {
  const auto t = import_vpr_rc_from_string(k_sample);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.num_nodes(), 5u);
  EXPECT_EQ(t.num_sinks(), 3u);
  EXPECT_EQ(t.node(t.root()).location, (layout::point{100.0, 100.0}));
  // BFS from the root, original-id tie-break: 40 -> {7, 31} -> {9, 12}.
  EXPECT_FALSE(t.node(1).is_sink());          // ex-7, the switch block
  EXPECT_TRUE(t.node(2).is_sink());           // ex-31
  EXPECT_DOUBLE_EQ(t.node(2).parent_wire_um, 180.0);
  EXPECT_TRUE(t.node(3).is_sink());           // ex-9 (smaller id first)
  EXPECT_DOUBLE_EQ(t.node(3).parent_wire_um, 75.0);
  EXPECT_DOUBLE_EQ(t.node(3).sink_cap_pf, 0.03);
  EXPECT_TRUE(t.node(4).is_sink());           // ex-12
  EXPECT_DOUBLE_EQ(t.node(4).parent_wire_um, 150.0);
  EXPECT_DOUBLE_EQ(t.node(4).sink_rat_ps, -100.0);
}

TEST(VprImport, SwitchLowersToEquivalentWireLength) {
  const auto t = import_vpr_rc_from_string(k_sample);
  // R/res_per_um + sqrt(2*Tdel/(res*cap)): 200/0.1 + sqrt(2*5/(0.1*0.0002)).
  const double expected = 2000.0 + std::sqrt(10.0 / 0.00002);
  EXPECT_DOUBLE_EQ(t.node(1).parent_wire_um, expected);
}

TEST(VprImport, ZeroTdelSwitchIsPureResistance) {
  const auto t = import_vpr_rc_from_string(
      "vpr-rc v1\n"
      "wire 0.5 0.001\n"
      "root 0\n"
      "node 0 0 0\n"
      "node 1 10 0\n"
      "edge 1 0 switch 100 0\n"
      "sink 1 0.02 0\n");
  EXPECT_DOUBLE_EQ(t.node(1).parent_wire_um, 200.0);
}

TEST(VprImport, RoundTripsThroughTreeIoBitIdentically) {
  const auto t = import_vpr_rc_from_string(k_sample);
  const std::string s1 = write_tree_to_string(t);
  const auto back = read_tree_from_string(s1);
  const std::string s2 = write_tree_to_string(back);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(t.subtree_hash(t.root()), back.subtree_hash(back.root()));
}

TEST(VprImport, GeneratedNetImportsAndRoundTrips) {
  vpr_net_options o;
  o.num_sinks = 100;
  o.fanout = 4;
  o.seed = 9;
  const std::string text = make_vpr_style_net_text(o);
  const auto t = import_vpr_rc_from_string(text);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.num_sinks(), o.num_sinks);
  EXPECT_GT(t.num_nodes(), o.num_sinks);  // switch blocks in between

  const std::string s1 = write_tree_to_string(t);
  const auto back = read_tree_from_string(s1);
  EXPECT_EQ(s1, write_tree_to_string(back));
  EXPECT_EQ(t.subtree_hash(t.root()), back.subtree_hash(back.root()));

  // Determinism in the seed.
  EXPECT_EQ(text, make_vpr_style_net_text(o));
  vpr_net_options o2 = o;
  o2.seed = 10;
  EXPECT_NE(text, make_vpr_style_net_text(o2));
}

TEST(VprImport, SingleSinkNet) {
  vpr_net_options o;
  o.num_sinks = 1;
  const auto t = make_vpr_style_net(o);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.num_sinks(), 1u);
}

TEST(VprImport, MalformedDocumentsThrow) {
  // Missing header.
  EXPECT_THROW(import_vpr_rc_from_string("wire 0.1 0.0002\n"),
               std::runtime_error);
  // Missing root.
  EXPECT_THROW(import_vpr_rc_from_string("vpr-rc v1\nnode 0 0 0\n"),
               std::runtime_error);
  // Two parents for one node.
  EXPECT_THROW(import_vpr_rc_from_string("vpr-rc v1\n"
                                         "root 0\n"
                                         "node 0 0 0\nnode 1 1 1\nnode 2 2 2\n"
                                         "edge 2 0 wire 1\nedge 2 1 wire 1\n"
                                         "sink 2 0.1 0\n"),
               std::runtime_error);
  // Unknown directive.
  EXPECT_THROW(import_vpr_rc_from_string("vpr-rc v1\nfoo 1 2\n"),
               std::runtime_error);
  // Switch edge without a wire model to lower it against.
  EXPECT_THROW(import_vpr_rc_from_string("vpr-rc v1\n"
                                         "root 0\n"
                                         "node 0 0 0\nnode 1 1 1\n"
                                         "edge 1 0 switch 100 5\n"
                                         "sink 1 0.1 0\n"),
               std::runtime_error);
  // Cycle disconnected from the root.
  EXPECT_THROW(import_vpr_rc_from_string("vpr-rc v1\n"
                                         "root 0\n"
                                         "node 0 0 0\nnode 1 1 1\nnode 2 2 2\n"
                                         "node 3 3 3\n"
                                         "edge 1 0 wire 1\n"
                                         "edge 2 3 wire 1\nedge 3 2 wire 1\n"
                                         "sink 1 0.1 0\n"),
               std::runtime_error);
  // Undeclared node referenced by an edge.
  EXPECT_THROW(import_vpr_rc_from_string("vpr-rc v1\n"
                                         "root 0\n"
                                         "node 0 0 0\nnode 1 1 1\n"
                                         "edge 1 99 wire 1\n"
                                         "sink 1 0.1 0\n"),
               std::runtime_error);
}

class VprLibraryEdgeCases : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VprLibraryEdgeCases, ImportedNetSolvesAcrossLibrarySizes) {
  vpr_net_options o;
  o.num_sinks = 24;
  o.seed = 21;
  const auto t = make_vpr_style_net(o);

  core::det_options d;
  d.wire = {o.wire_res_per_um, o.wire_cap_per_um};
  d.library = timing::make_parameterized_library(GetParam());
  ASSERT_EQ(d.library.size(), GetParam());
  const auto r = core::solve_van_ginneken(t, d);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isfinite(r.value().root_rat_ps));
}

INSTANTIATE_TEST_SUITE_P(LibSizes, VprLibraryEdgeCases,
                         ::testing::Values(std::size_t{1}, std::size_t{256}));

}  // namespace
}  // namespace vabi::tree
