#include "tree/routing_tree.hpp"

#include <gtest/gtest.h>

namespace vabi::tree {
namespace {

TEST(RoutingTree, StartsWithSourceRoot) {
  routing_tree t{{5.0, 6.0}};
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_TRUE(t.node(t.root()).is_source());
  EXPECT_EQ(t.node(t.root()).location, (layout::point{5.0, 6.0}));
  EXPECT_EQ(t.num_buffer_positions(), 0u);
}

TEST(RoutingTree, AddSinkDefaultsWireToManhattan) {
  routing_tree t{{0.0, 0.0}};
  const auto s = t.add_sink(t.root(), {30.0, 40.0}, 0.01, -5.0);
  EXPECT_EQ(t.num_sinks(), 1u);
  EXPECT_DOUBLE_EQ(t.node(s).parent_wire_um, 70.0);
  EXPECT_DOUBLE_EQ(t.node(s).sink_cap_pf, 0.01);
  EXPECT_DOUBLE_EQ(t.node(s).sink_rat_ps, -5.0);
  EXPECT_EQ(t.node(t.root()).children.size(), 1u);
}

TEST(RoutingTree, ExplicitWireLengthWins) {
  routing_tree t;
  const auto s = t.add_steiner(t.root(), {100.0, 0.0}, 250.0);
  EXPECT_DOUBLE_EQ(t.node(s).parent_wire_um, 250.0);
}

TEST(RoutingTree, SinksMustBeLeaves) {
  routing_tree t;
  const auto s = t.add_sink(t.root(), {10.0, 0.0}, 0.01, 0.0);
  EXPECT_THROW(t.add_steiner(s, {20.0, 0.0}), std::logic_error);
  EXPECT_THROW(t.add_sink(s, {20.0, 0.0}, 0.01, 0.0), std::logic_error);
}

TEST(RoutingTree, RejectsBadParentAndNegativeCap) {
  routing_tree t;
  EXPECT_THROW(t.add_steiner(99, {0.0, 0.0}), std::out_of_range);
  EXPECT_THROW(t.add_sink(t.root(), {1.0, 1.0}, -0.5, 0.0),
               std::invalid_argument);
}

TEST(RoutingTree, PostorderVisitsChildrenFirst) {
  routing_tree t;
  const auto a = t.add_steiner(t.root(), {10.0, 0.0});
  const auto s1 = t.add_sink(a, {20.0, 0.0}, 0.01, 0.0);
  const auto s2 = t.add_sink(a, {10.0, 10.0}, 0.01, 0.0);
  const auto order = t.postorder();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.back(), t.root());
  std::vector<std::size_t> pos(t.num_nodes());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[s1], pos[a]);
  EXPECT_LT(pos[s2], pos[a]);
  EXPECT_LT(pos[a], pos[t.root()]);
}

TEST(RoutingTree, SinksListedInIdOrder) {
  routing_tree t;
  const auto a = t.add_steiner(t.root(), {10.0, 0.0});
  const auto s1 = t.add_sink(a, {20.0, 0.0}, 0.01, 0.0);
  const auto s2 = t.add_sink(a, {30.0, 0.0}, 0.02, 0.0);
  const auto sinks = t.sinks();
  ASSERT_EQ(sinks.size(), 2u);
  EXPECT_EQ(sinks[0], s1);
  EXPECT_EQ(sinks[1], s2);
}

TEST(RoutingTree, TotalWireAndBbox) {
  routing_tree t{{0.0, 0.0}};
  const auto a = t.add_steiner(t.root(), {100.0, 0.0});
  t.add_sink(a, {100.0, 50.0}, 0.01, 0.0);
  EXPECT_DOUBLE_EQ(t.total_wire_um(), 150.0);
  const auto box = t.bounding_box();
  EXPECT_EQ(box.lo, (layout::point{0.0, 0.0}));
  EXPECT_EQ(box.hi, (layout::point{100.0, 50.0}));
}

TEST(RoutingTree, ValidatePassesOnWellFormedTree) {
  routing_tree t;
  const auto a = t.add_steiner(t.root(), {10.0, 0.0});
  t.add_sink(a, {20.0, 0.0}, 0.01, 0.0);
  EXPECT_NO_THROW(t.validate());
}

TEST(RoutingTree, ValidateRejectsSinklessTree) {
  routing_tree t;
  t.add_steiner(t.root(), {10.0, 0.0});
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(RoutingTree, BufferPositionCount) {
  routing_tree t;
  const auto a = t.add_steiner(t.root(), {10.0, 0.0});
  t.add_sink(a, {20.0, 0.0}, 0.01, 0.0);
  t.add_sink(a, {10.0, 10.0}, 0.01, 0.0);
  // 4 nodes, 3 legal positions (everything but the source).
  EXPECT_EQ(t.num_buffer_positions(), 3u);
}

}  // namespace
}  // namespace vabi::tree
