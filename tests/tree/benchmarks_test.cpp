#include "tree/benchmarks.hpp"

#include <gtest/gtest.h>

namespace vabi::tree {
namespace {

TEST(Benchmarks, SuiteMatchesTable1) {
  const auto& specs = paper_benchmarks();
  ASSERT_EQ(specs.size(), 7u);
  // Table 1 of the paper: (name, sinks, buffer positions).
  const std::vector<std::tuple<std::string, std::size_t, std::size_t>> table1 =
      {{"p1", 269, 537},  {"p2", 603, 1205},  {"r1", 267, 533},
       {"r2", 598, 1195}, {"r3", 862, 1723},  {"r4", 1903, 3805},
       {"r5", 3101, 6201}};
  for (std::size_t i = 0; i < table1.size(); ++i) {
    EXPECT_EQ(specs[i].name, std::get<0>(table1[i]));
    EXPECT_EQ(specs[i].sinks, std::get<1>(table1[i]));
    EXPECT_EQ(specs[i].buffer_positions(), std::get<2>(table1[i]));
  }
}

TEST(Benchmarks, FindByName) {
  const auto p1 = find_benchmark("p1");
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->sinks, 269u);
  EXPECT_FALSE(find_benchmark("nope").has_value());
}

TEST(Benchmarks, BuiltTreesMatchSpecCounts) {
  // Build the two smallest; the bigger ones are exercised by the benches.
  for (const char* name : {"p1", "r1"}) {
    const auto spec = find_benchmark(name);
    ASSERT_TRUE(spec.has_value());
    const routing_tree t = build_benchmark(*spec);
    EXPECT_EQ(t.num_sinks(), spec->sinks);
    EXPECT_EQ(t.num_buffer_positions(), spec->buffer_positions());
    EXPECT_NO_THROW(t.validate());
  }
}

TEST(Benchmarks, BuildIsDeterministic) {
  const auto spec = *find_benchmark("r1");
  const routing_tree a = build_benchmark(spec);
  const routing_tree b = build_benchmark(spec);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (node_id id = 0; id < a.num_nodes(); ++id) {
    EXPECT_DOUBLE_EQ(a.node(id).location.x, b.node(id).location.x);
  }
}

}  // namespace
}  // namespace vabi::tree
