// Malformed-input corpus for the tree_io parser.
//
// Every rejection must be a std::runtime_error whose message starts with
// "tree_io: line N:" and carries a fragment naming what was wrong -- the
// parser is the first guardrail of the solver stack (see DESIGN.md,
// "Failure handling & guardrails"): a non-finite sink cap or a dangling
// parent caught here is one line of context for the user instead of a
// nonfinite_value / invalid_tree abort deep inside a solve.
#include "tree/tree_io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace vabi::tree {
namespace {

constexpr const char* good =
    "vabi-tree v1\n"
    "nodes 4\n"
    "0 source 0 0\n"
    "1 steiner 10 0 0 10\n"
    "2 sink 20 0 1 10 0.05 400\n"
    "3 sink 10 10 1 10 0.03 500\n";

struct bad_case {
  const char* name;
  std::string text;
  const char* fragment;  ///< must appear in the error message
  std::size_t line;      ///< line number the error must cite
};

std::string replace_line(std::size_t line_no, const std::string& repl) {
  std::string out;
  std::string text = good;
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find('\n', pos);
    if (line == line_no) {
      out += repl;
    } else {
      out += text.substr(pos, end - pos);
    }
    out += '\n';
    pos = end + 1;
    ++line;
  }
  return out;
}

std::string truncate_after(std::size_t lines) {
  std::string text = good;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < lines; ++i) pos = text.find('\n', pos) + 1;
  return text.substr(0, pos);
}

const bad_case corpus[] = {
    {"WrongHeader", replace_line(1, "vabi-tree v9"),
     "expected header", 1},
    {"MissingNodesLine", "vabi-tree v1\n", "nodes <count>", 1},
    {"ZeroNodeCount", replace_line(2, "nodes 0"), "nodes <count>", 2},
    {"GarbageNodeCount", replace_line(2, "nodes many"), "nodes <count>", 2},
    {"MalformedNodeLine", replace_line(3, "0 source"),
     "malformed node line", 3},
    {"NonDenseIds", replace_line(4, "7 steiner 10 0 0 10"),
     "dense and in order", 4},
    {"SourceNotFirst", replace_line(3, "0 steiner 0 0 0 0"),
     "first node must be the source", 3},
    {"SecondSource", replace_line(4, "1 source 10 0"),
     "source must be node 0", 4},
    {"UnknownKind", replace_line(4, "1 widget 10 0 0 10"),
     "unknown node kind", 4},
    {"NonFiniteX", replace_line(4, "1 steiner inf 0 0 10"),
     "non-finite x coordinate", 4},
    {"NonFiniteY", replace_line(5, "2 sink 20 nan 1 10 0.05 400"),
     "non-finite y coordinate", 5},
    {"NonFiniteWire", replace_line(4, "1 steiner 10 0 0 inf"),
     "non-finite wire length", 4},
    {"NonFiniteSinkCap", replace_line(5, "2 sink 20 0 1 10 nan 400"),
     "non-finite sink cap", 5},
    {"NonFiniteSinkRat", replace_line(6, "3 sink 10 10 1 10 0.03 -inf"),
     "non-finite sink rat", 6},
    {"MissingParentWire", replace_line(4, "1 steiner 10 0"),
     "missing parent / wire length", 4},
    {"MissingSinkFields", replace_line(5, "2 sink 20 0 1 10"),
     "missing sink cap / rat", 5},
    {"DanglingParent", replace_line(4, "1 steiner 10 0 9 10"),
     "", 4},  // rewrapped builder error; only the line number is pinned
    {"TruncatedMidRecord", truncate_after(4), "unexpected end of file", 4},
    {"TruncatedAfterHeader", truncate_after(2), "unexpected end of file", 2},
    {"NoSinks",
     "vabi-tree v1\nnodes 2\n0 source 0 0\n1 steiner 10 0 0 10\n",
     "", 4},  // validate() failure cites the last parsed line
};

TEST(TreeIoCorpus, EveryBadInputIsRejectedWithALineNumber) {
  for (const auto& c : corpus) {
    SCOPED_TRACE(c.name);
    try {
      read_tree_from_string(c.text);
      FAIL() << "accepted malformed input";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      const std::string prefix =
          "tree_io: line " + std::to_string(c.line) + ":";
      EXPECT_EQ(msg.rfind(prefix, 0), 0u) << msg;
      EXPECT_NE(msg.find(c.fragment), std::string::npos) << msg;
    }
  }
}

TEST(TreeIoCorpus, GoodInputRoundTrips) {
  const auto tree = read_tree_from_string(good);
  EXPECT_EQ(tree.num_nodes(), 4u);
  EXPECT_EQ(tree.num_sinks(), 2u);
  const auto again = read_tree_from_string(write_tree_to_string(tree));
  EXPECT_EQ(write_tree_to_string(again), write_tree_to_string(tree));
}

TEST(TreeIoCorpus, CommentsAndBlankLinesAreSkipped) {
  const std::string text = std::string("# generated\n\n") + good;
  EXPECT_EQ(read_tree_from_string(text).num_nodes(), 4u);
}

}  // namespace
}  // namespace vabi::tree
