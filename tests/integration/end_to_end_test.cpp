// End-to-end: the full Table 3 pipeline on one small benchmark -- optimize
// with NOM / D2D / WID, evaluate all three designs under the same full
// variation model, and check the paper's qualitative orderings.
#include <gtest/gtest.h>

#include "analysis/buffered_tree_model.hpp"
#include "analysis/yield.hpp"
#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "tree/benchmarks.hpp"

namespace vabi {
namespace {

struct pipeline {
  tree::routing_tree net;
  timing::wire_model wire;
  timing::buffer_library lib = timing::standard_library();
  double driver_res = 150.0;
  layout::bbox die;

  explicit pipeline(std::size_t sinks) {
    tree::random_tree_options to;
    to.num_sinks = sinks;
    to.die_side_um = 6000.0;
    to.seed = 777;
    to.sink_cap_min_pf = 0.02;
    to.sink_cap_max_pf = 0.08;
    net = tree::make_random_tree(to);
    die = layout::square_die(to.die_side_um);
  }

  layout::process_model model(layout::variation_mode mode,
                              layout::spatial_profile profile) const {
    layout::process_model_config c;
    c.mode = mode;
    c.spatial.profile = profile;
    return layout::process_model{die, c};
  }

  timing::buffer_assignment optimize(layout::variation_mode mode,
                                     layout::spatial_profile profile) {
    if (mode == layout::nom_mode()) {
      core::det_options o{wire, lib, driver_res};
      return core::run_van_ginneken(net, o).assignment;
    }
    auto m = model(mode, profile);
    core::stat_options o;
    o.wire = wire;
    o.library = lib;
    o.driver_res_ohm = driver_res;
    const auto r = core::run_statistical_insertion(net, m, o);
    EXPECT_TRUE(r.ok());
    return r.assignment;
  }
};

TEST(EndToEnd, Table3PipelineQualitativeOrdering) {
  pipeline p{120};
  const auto profile = layout::spatial_profile::heterogeneous;

  const auto nom = p.optimize(layout::nom_mode(), profile);
  const auto d2d = p.optimize(layout::d2d_mode(), profile);
  const auto wid = p.optimize(layout::wid_mode(), profile);

  // Evaluate every design under the same full variation model.
  auto eval_model = p.model(layout::wid_mode(), profile);
  analysis::buffered_tree_model nom_m{p.net, p.wire, p.lib, nom, eval_model,
                                      p.driver_res};
  analysis::buffered_tree_model d2d_m{p.net, p.wire, p.lib, d2d, eval_model,
                                      p.driver_res};
  analysis::buffered_tree_model wid_m{p.net, p.wire, p.lib, wid, eval_model,
                                      p.driver_res};

  const auto& space = eval_model.space();
  const double q_nom = analysis::yield_rat(nom_m.root_rat(), space);
  const double q_d2d = analysis::yield_rat(d2d_m.root_rat(), space);
  const double q_wid = analysis::yield_rat(wid_m.root_rat(), space);

  // The variation-aware design must not lose at its own game (small slack
  // for heuristic pruning).
  const double slack = 0.02 * std::abs(q_wid);
  EXPECT_GE(q_wid + slack, q_nom);
  EXPECT_GE(q_wid + slack, q_d2d);

  // Timing yield at the paper's target: WID essentially always passes.
  const double target =
      analysis::target_rat_from_mean(wid_m.root_rat().mean());
  EXPECT_GT(analysis::timing_yield(wid_m.root_rat(), space, target), 0.95);
}

TEST(EndToEnd, AllDesignsRemainValidTrees) {
  pipeline p{60};
  const auto wid = p.optimize(layout::wid_mode(),
                              layout::spatial_profile::homogeneous);
  EXPECT_FALSE(wid.has_buffer(p.net.root()));
  EXPECT_NO_THROW(p.net.validate());
  // Every placed buffer is at a legal position with a valid type.
  for (tree::node_id id = 0; id < p.net.num_nodes(); ++id) {
    if (wid.has_buffer(id)) {
      EXPECT_LT(wid.buffer(id), p.lib.size());
      EXPECT_NE(id, p.net.root());
    }
  }
}

}  // namespace
}  // namespace vabi
