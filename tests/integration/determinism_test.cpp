// Reproducibility and scale stress tests.
//
// Every experiment in EXPERIMENTS.md must be bit-reproducible: the same
// seeds produce the same nets, the same variation spaces and the same
// optimized designs. Also exercises very deep trees (no recursion limits)
// and a mid-size H-tree end to end.
#include <gtest/gtest.h>

#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "tree/benchmarks.hpp"
#include "tree/generators.hpp"

namespace vabi {
namespace {

TEST(Determinism, StatisticalRunIsBitStable) {
  const auto spec = *tree::find_benchmark("r1");
  const auto run = [&] {
    const auto net = tree::build_benchmark(spec);
    layout::process_model_config c;
    c.mode = layout::wid_mode();
    layout::process_model model{layout::square_die(spec.die_side_um), c};
    core::stat_options o;
    o.library = timing::standard_library();
    o.driver_res_ohm = 150.0;
    return core::run_statistical_insertion(net, model, o);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.root_rat, b.root_rat);  // identical canonical forms
  EXPECT_EQ(a.num_buffers, b.num_buffers);
  for (std::size_t i = 0; i < a.assignment.num_nodes(); ++i) {
    const auto id = static_cast<tree::node_id>(i);
    EXPECT_EQ(a.assignment.has_buffer(id), b.assignment.has_buffer(id));
  }
}

TEST(Determinism, DifferentSeedsDifferentNets) {
  tree::random_tree_options o;
  o.num_sinks = 50;
  o.seed = 1;
  const auto a = tree::make_random_tree(o);
  o.seed = 2;
  const auto b = tree::make_random_tree(o);
  bool any_diff = false;
  for (tree::node_id id = 0; id < a.num_nodes(); ++id) {
    any_diff |= (a.node(id).location.x != b.node(id).location.x);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Stress, VeryDeepChainDoesNotOverflow) {
  tree::chain_options co;
  co.length_um = 50000.0;
  co.segments = 20000;  // 20k-node path: postorder/backtrace must be iterative
  const auto t = tree::make_chain(co);
  core::det_options o;
  o.library = timing::single_buffer_library();
  o.driver_res_ohm = 150.0;
  const auto r = core::run_van_ginneken(t, o);
  EXPECT_GT(r.num_buffers, 10u);
  const auto eval = timing::evaluate_buffered_tree(
      t, o.wire, o.library, r.assignment, o.driver_res_ohm);
  EXPECT_NEAR(eval.root_rat_ps, r.root_rat_ps, 1e-6);
}

TEST(Stress, MidSizeHTreeEndToEnd) {
  tree::h_tree_options h;
  h.levels = 6;  // 4096 sinks
  h.die_side_um = 12000.0;
  const auto t = tree::make_h_tree(h);
  layout::process_model_config c;
  c.mode = layout::wid_mode();
  layout::process_model model{layout::square_die(h.die_side_um), c};
  core::stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 100.0;
  const auto r = core::run_statistical_insertion(t, model, o);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.num_buffers, 100u);
  EXPECT_GT(r.root_rat.stddev(model.space()), 0.0);
}

}  // namespace
}  // namespace vabi
