#!/usr/bin/env bash
# Loopback smoke test of the vabi_serve daemon + vabi_client, as CI runs it
# (.github/workflows/ci.yml, serve-smoke job) under ASan and TSan:
#
#   1. concurrent sessions: one daemon, N clients in parallel, all batches
#      complete with exit 0;
#   2. graceful drain + crash-safe resume: a client streams a slow batch, the
#      daemon gets SIGTERM mid-stream (drain -> cancel at the drain timeout),
#      a fresh daemon on the same journal dir restores the finished nets and
#      solves only the remainder -- and the combined per-net output is
#      bit-identical (full %.17g precision) to an uninterrupted run;
#   3. the stats endpoint serves the vabi_serve_stats v2 schema.
#
# Usage: tests/serve/loopback_smoke.sh [BUILD_DIR]
# Tunables (env): SMOKE_CLIENTS, SMOKE_SINKS, SMOKE_BATCH, SMOKE_SEED.
set -euo pipefail

BUILD_DIR=${1:-build}
SERVE="$BUILD_DIR/examples/vabi_serve"
CLIENT="$BUILD_DIR/examples/vabi_client"
CLIENTS=${SMOKE_CLIENTS:-3}
SINKS=${SMOKE_SINKS:-120}
BATCH=${SMOKE_BATCH:-6}
SEED=${SMOKE_SEED:-9}

[ -x "$SERVE" ] && [ -x "$CLIENT" ] || {
  echo "loopback_smoke: binaries missing under $BUILD_DIR" >&2
  exit 1
}

WORK=$(mktemp -d /tmp/vabi-smoke-XXXXXX)
SOCK="$WORK/serve.sock"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

start_server() {
  "$SERVE" --unix "$SOCK" --journal-dir "$WORK" "$@" &
  SERVER_PID=$!
  for _ in $(seq 1 300); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "loopback_smoke: server died during startup" >&2
      exit 1
    }
    sleep 0.1
  done
  echo "loopback_smoke: server never bound $SOCK" >&2
  exit 1
}

stop_server() {  # graceful: SIGTERM -> drain -> exit 0
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  local rc=$?
  SERVER_PID=""
  return $rc
}

# --- 1: concurrent sessions ------------------------------------------------
echo "=== concurrent sessions ($CLIENTS clients) ==="
start_server
pids=()
for i in $(seq 1 "$CLIENTS"); do
  "$CLIENT" --unix "$SOCK" --token "smoke$i" \
    --generate "$SINKS" --batch "$BATCH" --seed $((SEED + i)) \
    > "$WORK/client$i.out" 2> "$WORK/client$i.err" &
  pids+=($!)
done
for i in $(seq 1 "$CLIENTS"); do
  wait "${pids[$((i - 1))]}" || {
    echo "loopback_smoke: client $i failed" >&2
    cat "$WORK/client$i.err" >&2
    exit 1
  }
  ok=$(grep -c '^net .* ok ' "$WORK/client$i.out")
  [ "$ok" -eq "$BATCH" ] || {
    echo "loopback_smoke: client $i solved $ok/$BATCH nets" >&2
    exit 1
  }
done

# --- 3 (while the server is up): stats schema ------------------------------
echo "=== stats schema ==="
"$CLIENT" --unix "$SOCK" --stats > "$WORK/stats.json" 2>/dev/null
grep -q '"schema": "vabi_serve_stats v2"' "$WORK/stats.json"
grep -q '"solve_latency_ms"' "$WORK/stats.json"
stop_server

# --- 2: SIGTERM mid-stream, then resume bit-identity -----------------------
echo "=== drain + resume bit-identity ==="
# Uninterrupted reference run (separate journal token, same seed => same
# nets; drop our own journal so nothing is restored).
start_server
"$CLIENT" --unix "$SOCK" --token ref \
  --generate "$SINKS" --batch "$BATCH" --seed "$SEED" > "$WORK/ref.out" 2>&1
stop_server
rm -f "$WORK/ref.vjl"

# Interrupted run: short drain timeout so SIGTERM cancels what has not
# finished; the journal keeps only completed nets.
start_server --drain-timeout 1
"$CLIENT" --unix "$SOCK" --token victim --retries 2 --base-delay-ms 100 \
  --generate "$SINKS" --batch "$BATCH" --seed "$SEED" \
  > "$WORK/run1.out" 2> "$WORK/run1.err" &
CLIENT_PID=$!
for _ in $(seq 1 600); do
  [ "$(grep -c '^net ' "$WORK/run1.out" 2>/dev/null || true)" -ge 1 ] && break
  sleep 0.05
done
stop_server  # drain: SIGTERM mid-stream
wait "$CLIENT_PID" 2>/dev/null || true  # may exit nonzero: server went away

# Resume against a fresh daemon on the same journal dir.
start_server
"$CLIENT" --unix "$SOCK" --token victim --resume \
  --generate "$SINKS" --batch "$BATCH" --seed "$SEED" \
  > "$WORK/resumed.out" 2> "$WORK/resumed.err"
stop_server

restored=$(grep -c ' restored$' "$WORK/resumed.out" || true)
echo "restored $restored/$BATCH nets from the journal"
[ "$restored" -ge 1 ] || {
  echo "loopback_smoke: resume restored nothing from the journal" >&2
  exit 1
}
# Bit-identity: per-net lines (full %.17g nominals, buffer and candidate
# counts) must match the uninterrupted run exactly, modulo completion order
# and the ' restored' marker.
sed 's/ restored$//' "$WORK/resumed.out" | grep '^net ' | sort > "$WORK/resumed.norm"
grep '^net ' "$WORK/ref.out" | sort > "$WORK/ref.norm"
diff -u "$WORK/ref.norm" "$WORK/resumed.norm" || {
  echo "loopback_smoke: resumed output diverged from the reference" >&2
  exit 1
}
echo "BIT-IDENTICAL: interrupted+resumed run matches uninterrupted run"
echo "loopback_smoke: OK"
