// Client-side reconnect policy: the backoff schedule must be a pure,
// deterministic function of retry_policy (delays drawn from jitter_seed,
// never wall time), exponentially shaped, capped, and jittered into
// [0.5, 1.0] x the capped delay -- so a retry storm after a daemon restart
// spreads out reproducibly and tests can assert exact timings.
#include "serve/client.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace vabi::serve {
namespace {

TEST(BackoffSchedule, DeterministicForSamePolicy) {
  retry_policy p;
  p.max_attempts = 8;
  p.jitter_seed = 12345;
  const std::vector<double> a = backoff_schedule(p);
  const std::vector<double> b = backoff_schedule(p);
  ASSERT_EQ(a.size(), 7u);  // attempt 0 is immediate
  EXPECT_EQ(a, b);
}

TEST(BackoffSchedule, DifferentSeedsDiffer) {
  retry_policy p;
  p.max_attempts = 8;
  p.jitter_seed = 1;
  retry_policy q = p;
  q.jitter_seed = 2;
  const std::vector<double> a = backoff_schedule(p);
  const std::vector<double> b = backoff_schedule(q);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(a, b);
}

TEST(BackoffSchedule, JitterBoundedByCappedExponential) {
  retry_policy p;
  p.max_attempts = 12;
  p.base_delay_ms = 50.0;
  p.max_delay_ms = 2000.0;
  p.multiplier = 2.0;
  p.jitter_seed = 777;
  const std::vector<double> delays = backoff_schedule(p);
  ASSERT_EQ(delays.size(), 11u);
  for (std::size_t k = 0; k < delays.size(); ++k) {
    const double capped =
        std::min(p.max_delay_ms, p.base_delay_ms * std::pow(p.multiplier,
                                                            double(k)));
    EXPECT_GE(delays[k], 0.5 * capped) << "attempt " << k;
    EXPECT_LE(delays[k], capped) << "attempt " << k;
  }
  // The cap must actually bite: 50 * 2^10 >> 2000.
  EXPECT_LE(delays.back(), p.max_delay_ms);
}

TEST(BackoffSchedule, MonotoneInExpectationUntilCap) {
  // Not strictly monotone (jitter), but the capped envelope doubles each
  // attempt, so delay(k+2) must exceed delay(k)'s envelope floor until the
  // cap: 0.5 * base * m^(k+2) > base * m^k for m = 2.
  retry_policy p;
  p.max_attempts = 6;
  p.max_delay_ms = 1e9;  // cap out of the way
  const std::vector<double> d = backoff_schedule(p);
  ASSERT_EQ(d.size(), 5u);
  for (std::size_t k = 0; k + 2 < d.size(); ++k) {
    EXPECT_GT(d[k + 2], d[k]) << "attempt " << k;
  }
}

TEST(BackoffSchedule, SizedByMaxAttempts) {
  retry_policy p;
  p.max_attempts = 1;
  EXPECT_TRUE(backoff_schedule(p).empty());
  p.max_attempts = 2;
  EXPECT_EQ(backoff_schedule(p).size(), 1u);
}

TEST(ServeClient, ConnectFailsClosedWithoutServer) {
  client_options opts;
  opts.unix_socket_path = "/nonexistent/vabi-serve-test.sock";
  opts.retry.max_attempts = 2;
  opts.retry.base_delay_ms = 1.0;
  opts.retry.max_delay_ms = 2.0;
  serve_client client(opts);
  EXPECT_FALSE(client.connect());
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(client.last_error().empty());
  // The budget spans the client's lifetime: once exhausted, further calls
  // fail immediately instead of sleeping again.
  EXPECT_FALSE(client.connect());
}

}  // namespace
}  // namespace vabi::serve
