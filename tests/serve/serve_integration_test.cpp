// End-to-end robustness tests of the vabi_serve daemon: concurrent sessions
// whose streamed results are bit-identical to the direct solver, crash-safe
// reconnect/resume with zero completed jobs re-solved, typed admission-control
// rejection under overload, session deadlines, backpressure shedding of a
// stuck reader that leaves other sessions untouched, graceful drain, and the
// aggregated stats schema. Everything runs over a real unix-domain socket
// against a real daemon -- the same code paths examples/vabi_serve.cpp and
// examples/vabi_client.cpp exercise in CI's loopback smoke job.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "core/statistical_dp.hpp"
#include "serve/client.hpp"
#include "serve/wire.hpp"
#include "testing/fault_injection.hpp"
#include "tree/generators.hpp"

namespace vabi::serve {
namespace {

// Mirrors parallel.cpp's results_identical: every field of the determinism
// contract (scheduling-dependent counters excluded).
bool identical(const core::stat_result& a, const core::stat_result& b) {
  if (!(a.root_rat == b.root_rat)) return false;
  if (a.num_buffers != b.num_buffers || a.path != b.path) return false;
  if (a.assignment.num_nodes() != b.assignment.num_nodes()) return false;
  for (tree::node_id n = 0; n < a.assignment.num_nodes(); ++n) {
    const bool ha = a.assignment.has_buffer(n);
    if (ha != b.assignment.has_buffer(n)) return false;
    if (ha && a.assignment.buffer(n) != b.assignment.buffer(n)) return false;
  }
  if (a.wires.num_nodes() != b.wires.num_nodes()) return false;
  for (tree::node_id n = 0; n < a.wires.num_nodes(); ++n) {
    if (a.wires.width(n) != b.wires.width(n)) return false;
  }
  return a.stats.candidates_created == b.stats.candidates_created &&
         a.stats.candidates_pruned == b.stats.candidates_pruned &&
         a.stats.merge_pairs == b.stats.merge_pairs &&
         a.stats.peak_list_size == b.stats.peak_list_size;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/vabi-serve-test-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    daemon_.reset();
    testing::disarm();
    std::filesystem::remove_all(dir_);
  }

  serve_options base_options() {
    serve_options o;
    o.unix_socket_path = dir_ + "/serve.sock";
    o.journal_dir = dir_;
    return o;
  }

  void start_daemon(serve_options o) {
    daemon_ = std::make_unique<solver_daemon>(std::move(o));
    ASSERT_EQ(daemon_->start(), "");
  }

  client_options client_opts(const std::string& token = "") {
    client_options c;
    c.unix_socket_path = dir_ + "/serve.sock";
    c.token = token;
    c.retry.base_delay_ms = 20.0;
    c.retry.max_delay_ms = 200.0;
    return c;
  }

  static submit_msg make_submit(std::size_t jobs, std::size_t sinks,
                                std::uint64_t seed) {
    submit_msg m;
    m.batch_seed = seed;
    for (std::size_t i = 0; i < jobs; ++i) {
      wire_job j;
      j.num_sinks = sinks;
      m.jobs.push_back(j);
    }
    return m;
  }

  /// The direct-solver reference for one generated wire job: the exact
  /// mapping + prepare + solve pipeline the daemon runs, executed locally.
  static core::solve_outcome<core::stat_result> solve_direct(
      const submit_msg& m, std::size_t index, std::uint64_t* num_sources) {
    core::stat_options options;
    layout::process_model_config model_config;
    const std::string err =
        map_wire_options(m.options, options, model_config);
    EXPECT_EQ(err, "");
    core::batch_job job;
    job.options = options;
    job.model = model_config;
    tree::random_tree_options g;
    g.num_sinks = static_cast<std::size_t>(m.jobs[index].num_sinks);
    g.die_side_um = m.jobs[index].die_side_um;
    g.criticality_balance = m.jobs[index].criticality_balance;
    g.seed = 0;
    job.generate = g;
    core::prepared_job setup =
        core::prepare_batch_job(job, index, m.batch_seed);
    auto solved = core::solve_statistical_insertion(*setup.net, *setup.model,
                                                    job.options, nullptr);
    if (num_sources != nullptr) *num_sources = setup.model->space().size();
    return solved;
  }

  std::string dir_;
  std::unique_ptr<solver_daemon> daemon_;
};

bool poll_until(const std::function<bool()>& done, double timeout_s = 20.0) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < timeout_s) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

// --- bit-identity across concurrent sessions -------------------------------

TEST_F(ServeTest, ConcurrentSessionsBitIdenticalToDirectSolver) {
  start_daemon(base_options());
  constexpr std::size_t k_sessions = 8;

  struct session_run {
    submit_msg submit;
    std::map<std::uint64_t, result_msg> results;
    batch_summary summary;
  };
  std::vector<session_run> runs(k_sessions);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < k_sessions; ++i) {
    runs[i].submit = make_submit(/*jobs=*/2 + i % 3, /*sinks=*/8 + 2 * i,
                                 /*seed=*/100 + i);
    threads.emplace_back([this, &run = runs[i], i] {
      serve_client client(client_opts("sess" + std::to_string(i)));
      ASSERT_TRUE(client.connect()) << client.last_error();
      run.summary = client.run_batch(run.submit, [&](const result_msg& r) {
        run.results[r.record.job_index] = r;
      });
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < k_sessions; ++i) {
    const session_run& run = runs[i];
    ASSERT_TRUE(run.summary.complete) << "session " << i << ": "
                                      << run.summary.error;
    EXPECT_EQ(run.summary.solved, run.submit.jobs.size());
    EXPECT_EQ(run.summary.failed, 0u);
    ASSERT_EQ(run.results.size(), run.submit.jobs.size());
    for (std::size_t j = 0; j < run.submit.jobs.size(); ++j) {
      ASSERT_TRUE(run.results.count(j)) << "session " << i << " job " << j;
      const core::journal_record& rec = run.results.at(j).record;
      ASSERT_TRUE(rec.ok) << rec.detail;
      std::uint64_t num_sources = 0;
      auto direct = solve_direct(run.submit, j, &num_sources);
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(rec.num_sources, num_sources);
      EXPECT_TRUE(identical(rec.result, *direct))
          << "session " << i << " job " << j
          << " diverged from the direct solver";
    }
  }
  EXPECT_EQ(daemon_->active_sessions(), 0u);
}

// --- crash-safe reconnect / resume -----------------------------------------

TEST_F(ServeTest, DroppedSessionReconnectsWithZeroCompletedJobsReSolved) {
  start_daemon(base_options());
  constexpr std::size_t k_jobs = 6;
  const submit_msg submit = make_submit(k_jobs, /*sinks=*/12, /*seed=*/7);

  // The daemon force-closes the connection right after delivering one job's
  // result (the result frame itself is lost with the connection -- worst
  // case). The client must reconnect with backoff, resubmit the identical
  // batch, get journaled results restored, and see every job exactly once.
  // Which job's delivery tears the session comes from the VABI_FAULT_SPEC
  // seed clause, so nightly's seed matrix moves the kill point around.
  const std::uint64_t drop_job = testing::env_seed() % k_jobs;
  testing::arm("wire_drop_session:job=" + std::to_string(drop_job));
  std::map<std::uint64_t, result_msg> results;
  batch_summary summary;
  std::thread client_thread([&] {
    client_options copts = client_opts("droptest");
    copts.retry.base_delay_ms = 150.0;  // widen the disarm window
    serve_client client(copts);
    ASSERT_TRUE(client.connect()) << client.last_error();
    summary = client.run_batch(submit, [&](const result_msg& r) {
      results[r.record.job_index] = r;
    });
  });
  ASSERT_TRUE(poll_until([] {
    return testing::fired_count(testing::fault_point::wire_drop_session) >= 1;
  }));
  testing::disarm();  // the client is in backoff; let the reconnect succeed
  client_thread.join();

  ASSERT_TRUE(summary.complete) << summary.error;
  EXPECT_GE(summary.reconnects, 1u);
  EXPECT_GE(summary.restored, 1u);  // at least job 2 came back from the journal
  EXPECT_EQ(summary.solved + summary.restored, k_jobs);
  ASSERT_EQ(results.size(), k_jobs);
  // Zero completed jobs re-solved: jobs_completed counts ok *solves* (not
  // restores), so a re-solved job would push it past the batch size.
  EXPECT_EQ(daemon_->stats().jobs_completed(), k_jobs);
  EXPECT_EQ(daemon_->stats().resumes(), 1u);

  // The restored results are bit-identical to the direct solver, same as
  // streamed ones -- they are the journal's bytes.
  for (std::size_t j = 0; j < k_jobs; ++j) {
    ASSERT_TRUE(results.count(j));
    ASSERT_TRUE(results.at(j).record.ok) << results.at(j).record.detail;
    auto direct = solve_direct(submit, j, nullptr);
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(identical(results.at(j).record.result, *direct))
        << "job " << j;
  }
}

// --- admission control ------------------------------------------------------

TEST_F(ServeTest, OverloadIsTypedAndAdmittedSessionsComplete) {
  serve_options o = base_options();
  o.num_threads = 1;
  o.max_queued_jobs = 4;
  start_daemon(o);

  batch_summary a_summary;
  std::thread a_thread([&] {
    serve_client a(client_opts("bulk"));
    ASSERT_TRUE(a.connect()) << a.last_error();
    a_summary = a.run_batch(make_submit(4, /*sinks=*/200, /*seed=*/3));
  });
  // Wait until A's jobs occupy the queue, then B's 2 jobs must be rejected
  // whole (nothing partially admitted).
  ASSERT_TRUE(poll_until([this] { return daemon_->queue_depth() >= 3; }));
  client_options b_opts = client_opts("latecomer");
  b_opts.retry.max_overload_retries = 0;  // report the rejection, don't wait
  serve_client b(b_opts);
  ASSERT_TRUE(b.connect()) << b.last_error();
  const batch_summary b_summary =
      b.run_batch(make_submit(2, /*sinks=*/8, /*seed=*/4));
  EXPECT_TRUE(b_summary.overloaded);
  EXPECT_FALSE(b_summary.complete);
  EXPECT_EQ(b_summary.overload_retries, 0u);
  EXPECT_NE(b_summary.error.find("queue full"), std::string::npos)
      << b_summary.error;
  EXPECT_GE(daemon_->stats().overload_rejections(), 1u);

  a_thread.join();
  ASSERT_TRUE(a_summary.complete) << a_summary.error;
  EXPECT_EQ(a_summary.solved, 4u);
}

TEST_F(ServeTest, OverloadRetriesWithBackoffUntilAdmitted) {
  serve_options o = base_options();
  o.num_threads = 1;
  o.max_queued_jobs = 4;
  start_daemon(o);

  batch_summary a_summary;
  std::thread a_thread([&] {
    serve_client a(client_opts("bulk"));
    ASSERT_TRUE(a.connect()) << a.last_error();
    a_summary = a.run_batch(make_submit(4, /*sinks=*/120, /*seed=*/3));
  });
  ASSERT_TRUE(poll_until([this] { return daemon_->queue_depth() >= 3; }));

  // B is rejected while A occupies the queue, but its overload budget keeps
  // resubmitting on the same connection with backoff; once A drains, B is
  // admitted and completes. Overload retries are counted separately from
  // reconnects: the server was healthy the whole time.
  client_options b_opts = client_opts("patient");
  b_opts.retry.max_overload_retries = 200;
  b_opts.retry.base_delay_ms = 5.0;
  b_opts.retry.max_delay_ms = 25.0;
  serve_client b(b_opts);
  ASSERT_TRUE(b.connect()) << b.last_error();
  const batch_summary b_summary =
      b.run_batch(make_submit(2, /*sinks=*/8, /*seed=*/4));
  a_thread.join();

  ASSERT_TRUE(b_summary.complete) << b_summary.error;
  EXPECT_FALSE(b_summary.overloaded);
  EXPECT_GE(b_summary.overload_retries, 1u);
  EXPECT_EQ(b_summary.reconnects, 0u);
  EXPECT_EQ(b_summary.solved, 2u);
}

// --- session deadlines ------------------------------------------------------

TEST_F(ServeTest, SessionDeadlineCancelsViaTokenNotOptions) {
  serve_options o = base_options();
  o.num_threads = 1;
  start_daemon(o);

  serve_client client(client_opts("hurried"));
  ASSERT_TRUE(client.connect()) << client.last_error();
  submit_msg submit = make_submit(6, /*sinks=*/400, /*seed=*/9);
  submit.session_deadline_ms = 10;
  const batch_summary summary = client.run_batch(submit);
  EXPECT_FALSE(summary.complete);
  EXPECT_NE(summary.error.find("deadline"), std::string::npos)
      << summary.error;
  // The daemon winds the batch down as cancelled; nothing leaks.
  EXPECT_TRUE(poll_until([this] { return daemon_->queue_depth() == 0; }));
}

// --- backpressure shed ------------------------------------------------------

TEST_F(ServeTest, StuckReaderIsShedWithoutDisturbingOthers) {
  serve_options o = base_options();
  o.journal_dir = "";  // volume test; no journals
  o.max_output_buffer_bytes = 512;
  o.stall_timeout_seconds = 0.2;
  start_daemon(o);

  // A raw socket that submits a result-heavy batch and never reads: the
  // kernel socket buffer fills, then the 512-byte output cap, then the
  // stall clock runs out and the daemon sheds the session.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = dir_ + "/serve.sock";
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  hello_msg hello;
  hello.token = "stuck";
  auto frame = encode_frame(message{hello});
  ASSERT_TRUE(wire_write_all(fd, frame.data(), frame.size()));
  frame = encode_frame(message{make_submit(96, /*sinks=*/48, /*seed=*/5)});
  ASSERT_TRUE(wire_write_all(fd, frame.data(), frame.size()));

  // Meanwhile a well-behaved session on the same daemon runs to completion.
  serve_client polite(client_opts("polite"));
  ASSERT_TRUE(polite.connect()) << polite.last_error();
  const batch_summary summary =
      polite.run_batch(make_submit(3, /*sinks=*/10, /*seed=*/6));
  ASSERT_TRUE(summary.complete) << summary.error;
  EXPECT_EQ(summary.solved, 3u);

  EXPECT_TRUE(poll_until([this] { return daemon_->stats().sheds() >= 1; },
                         60.0))
      << "stuck session was never shed";
  ::close(fd);
  // Shedding cancelled the stuck batch: the queue drains.
  EXPECT_TRUE(poll_until([this] { return daemon_->queue_depth() == 0; },
                         60.0));
}

// --- graceful drain ---------------------------------------------------------

TEST_F(ServeTest, DrainRefusesNewWorkAndFinishesInFlight) {
  serve_options o = base_options();
  o.num_threads = 2;
  start_daemon(o);

  batch_summary a_summary;
  std::thread a_thread([&] {
    serve_client a(client_opts("finisher"));
    ASSERT_TRUE(a.connect()) << a.last_error();
    a_summary = a.run_batch(make_submit(6, /*sinks=*/100, /*seed=*/11));
  });
  // B connects before the drain begins (the listener stops accepting after).
  serve_client b(client_opts("toolate"));
  ASSERT_TRUE(b.connect()) << b.last_error();
  ASSERT_TRUE(poll_until([this] { return daemon_->queue_depth() > 0; }));
  daemon_->request_drain();
  EXPECT_TRUE(daemon_->draining());

  const batch_summary b_summary =
      b.run_batch(make_submit(1, /*sinks=*/8, /*seed=*/12));
  EXPECT_TRUE(b_summary.draining);
  EXPECT_FALSE(b_summary.complete);

  a_thread.join();
  ASSERT_TRUE(a_summary.complete) << a_summary.error;
  EXPECT_EQ(a_summary.solved, 6u);
  daemon_->stop();
}

// --- stats ------------------------------------------------------------------

TEST_F(ServeTest, StatsJsonCarriesSchemaAndSessionCounters) {
  start_daemon(base_options());
  serve_client client(client_opts("counted"));
  ASSERT_TRUE(client.connect()) << client.last_error();
  const batch_summary summary =
      client.run_batch(make_submit(3, /*sinks=*/10, /*seed=*/21));
  ASSERT_TRUE(summary.complete) << summary.error;

  // Both surfaces -- in-band stats_request and the local accessor -- render
  // the same schema.
  const std::string in_band = client.fetch_stats();
  const std::string local = daemon_->stats_json();
  for (const std::string& json : {in_band, local}) {
    EXPECT_NE(json.find("\"schema\": \"vabi_serve_stats v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"counted\""), std::string::npos);
    EXPECT_NE(json.find("\"jobs_completed\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"solve_latency_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"cache_hits\""), std::string::npos);
    EXPECT_NE(json.find("\"nodes_reused\""), std::string::npos);
    // v2 adds per-session and global timing-yield histograms (a backward
    // compatible field addition: v1 consumers ignore unknown keys).
    EXPECT_NE(json.find("\"yield\": {\"count\": 3"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"buckets\": ["), std::string::npos);
  }
}

// --- transient accept failure ----------------------------------------------

TEST_F(ServeTest, ClientBudgetRidesOutTransientAcceptFailure) {
  start_daemon(base_options());
  testing::arm("wire_accept_fail");
  std::atomic<bool> connected{false};
  std::thread client_thread([&] {
    client_options copts = client_opts("persistent");
    copts.retry.max_attempts = 10;
    copts.retry.base_delay_ms = 100.0;
    serve_client client(copts);
    connected = client.connect();
    EXPECT_TRUE(connected.load()) << client.last_error();
  });
  ASSERT_TRUE(poll_until([] {
    return testing::fired_count(testing::fault_point::wire_accept_fail) >= 1;
  }));
  testing::disarm();
  client_thread.join();
  EXPECT_TRUE(connected.load());
}

}  // namespace
}  // namespace vabi::serve
