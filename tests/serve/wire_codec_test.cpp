// Malformed-frame corpus for the serve wire codec, mirroring
// tests/tree/tree_io_corpus_test.cpp's discipline: every way a frame can be
// damaged -- truncation at every byte boundary, a bit flip in every
// header/payload bit, bogus message kinds, oversized length prefixes --
// must come back as a typed decode status (need_more / corrupt), never a
// crash, never an out-of-bounds read, and never a silently accepted wrong
// message. Also covers the incremental frame_splitter and the wire-level
// fault-injection points (crc flip, short read, short write).
#include "serve/wire.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "testing/fault_injection.hpp"

namespace vabi::serve {
namespace {

struct disarm_guard {
  ~disarm_guard() { testing::disarm(); }
};

submit_msg sample_submit() {
  submit_msg m;
  m.batch_seed = 42;
  m.priority = 7;
  m.session_deadline_ms = 1500;
  m.options.rule = 1;
  m.options.pbar = 0.25;
  m.options.per_net_deadline_seconds = 2.5;
  wire_job gen;
  gen.num_sinks = 33;
  gen.die_side_um = 5000.0;
  gen.criticality_balance = 0.6;
  m.jobs.push_back(gen);
  wire_job explicit_tree;
  explicit_tree.has_tree = true;
  explicit_tree.tree_text = "vabi-tree v1\nnot actually parsed here\n";
  m.jobs.push_back(explicit_tree);
  return m;
}

result_msg sample_result() {
  result_msg m;
  m.resumed = true;
  m.cache_hits = 3;
  m.cache_misses = 4;
  m.nodes_reused = 17;
  m.record.job_index = 5;
  m.record.fingerprint = 0xdeadbeefcafe1234ull;
  m.record.ok = true;
  m.record.num_sources = 9;
  m.record.result.num_buffers = 4;
  m.record.result.root_rat = stats::linear_form(
      -123.456, {{0, 1.5}, {3, -0.25}, {8, 0.0625}});
  m.record.result.stats.candidates_created = 77;
  m.record.result.stats.merge_pairs = 11;
  return m;
}

message decode_one(const std::vector<std::uint8_t>& frame) {
  decode_result r = decode_frame(frame.data(), frame.size());
  EXPECT_EQ(r.status, decode_status::ok) << r.error;
  EXPECT_EQ(r.consumed, frame.size());
  return r.msg;
}

TEST(WireCodec, RoundTripsEveryMessageKind) {
  {
    hello_msg h;
    h.token = "sess-42";
    h.resume = true;
    auto m = decode_one(encode_frame(message{h}));
    auto* d = std::get_if<hello_msg>(&m);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->version, k_protocol_version);
    EXPECT_EQ(d->token, "sess-42");
    EXPECT_TRUE(d->resume);
  }
  {
    auto m = decode_one(encode_frame(message{sample_submit()}));
    auto* d = std::get_if<submit_msg>(&m);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->batch_seed, 42u);
    EXPECT_EQ(d->priority, 7);
    EXPECT_EQ(d->session_deadline_ms, 1500u);
    EXPECT_EQ(d->options.rule, 1);
    EXPECT_DOUBLE_EQ(d->options.pbar, 0.25);
    ASSERT_EQ(d->jobs.size(), 2u);
    EXPECT_FALSE(d->jobs[0].has_tree);
    EXPECT_EQ(d->jobs[0].num_sinks, 33u);
    EXPECT_TRUE(d->jobs[1].has_tree);
    EXPECT_EQ(d->jobs[1].tree_text,
              "vabi-tree v1\nnot actually parsed here\n");
  }
  for (const message& empty_kinds : {message{cancel_msg{}},
                                    message{stats_request_msg{}},
                                    message{bye_msg{}}}) {
    auto m = decode_one(encode_frame(empty_kinds));
    EXPECT_EQ(kind_of(m), kind_of(empty_kinds));
  }
  {
    auto m = decode_one(encode_frame(message{sample_result()}));
    auto* d = std::get_if<result_msg>(&m);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->resumed);
    EXPECT_EQ(d->cache_hits, 3u);
    EXPECT_EQ(d->nodes_reused, 17u);
    EXPECT_EQ(d->record.job_index, 5u);
    EXPECT_EQ(d->record.fingerprint, 0xdeadbeefcafe1234ull);
    EXPECT_TRUE(d->record.ok);
    // The record travels through the journal codec: bit-exact round trip.
    const auto a = core::journal_detail::encode_record_payload(
        sample_result().record);
    const auto b = core::journal_detail::encode_record_payload(d->record);
    EXPECT_EQ(a, b);
  }
  {
    overloaded_msg o;
    o.queued = 99;
    o.capacity = 100;
    o.detail = "full";
    auto m = decode_one(encode_frame(message{o}));
    auto* d = std::get_if<overloaded_msg>(&m);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->queued, 99u);
    EXPECT_EQ(d->detail, "full");
  }
  {
    batch_done_msg b;
    b.solved = 5;
    b.restored = 2;
    b.failed = 1;
    b.cancelled = 3;
    b.wall_seconds = 1.25;
    auto m = decode_one(encode_frame(message{b}));
    auto* d = std::get_if<batch_done_msg>(&m);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->solved, 5u);
    EXPECT_EQ(d->cancelled, 3u);
    EXPECT_DOUBLE_EQ(d->wall_seconds, 1.25);
  }
  {
    session_error_msg e;
    e.code = 4;
    e.detail = "deadline";
    auto m = decode_one(encode_frame(message{e}));
    auto* d = std::get_if<session_error_msg>(&m);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->code, 4);
    EXPECT_EQ(d->detail, "deadline");
  }
}

// -- the corpus -------------------------------------------------------------

TEST(WireCodecCorpus, TruncationAtEveryByteIsNeedMore) {
  const std::vector<std::uint8_t> frame =
      encode_frame(message{sample_submit()});
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const decode_result r = decode_frame(frame.data(), len);
    EXPECT_EQ(r.status, decode_status::need_more)
        << "prefix of " << len << " bytes";
  }
}

TEST(WireCodecCorpus, EveryBitFlipIsRejectedOrIncomplete) {
  const std::vector<std::uint8_t> frame =
      encode_frame(message{sample_result()});
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> damaged = frame;
      damaged[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const decode_result r = decode_frame(damaged.data(), damaged.size());
      // A flip in the length prefix may make the frame look longer
      // (need_more on a stream); every other flip must be typed corrupt.
      // Nothing may decode as ok: the CRC covers the whole payload and the
      // length is part of what the CRC check implicitly pins.
      EXPECT_NE(r.status, decode_status::ok)
          << "byte " << byte << " bit " << bit;
      if (byte >= 8) {
        EXPECT_EQ(r.status, decode_status::corrupt)
            << "payload flip must be corrupt: byte " << byte << " bit "
            << bit;
      }
    }
  }
}

std::vector<std::uint8_t> frame_with_payload(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> f;
  const auto put32 = [&f](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      f.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
    }
  };
  put32(static_cast<std::uint32_t>(payload.size()));
  put32(core::crc32(payload.data(), payload.size()));
  f.insert(f.end(), payload.begin(), payload.end());
  return f;
}

TEST(WireCodecCorpus, BogusMessageKindsAreCorrupt) {
  for (const std::uint8_t kind :
       {0x00, 0x06, 0x07, 0x42, 0x80, 0x89, 0xaa, 0xff}) {
    const std::vector<std::uint8_t> frame = frame_with_payload({kind});
    const decode_result r = decode_frame(frame.data(), frame.size());
    EXPECT_EQ(r.status, decode_status::corrupt) << "kind " << int(kind);
    EXPECT_NE(r.error.find("unknown message kind"), std::string::npos)
        << r.error;
  }
}

TEST(WireCodecCorpus, OversizedLengthPrefixIsCorruptNotAllocation) {
  for (const std::uint32_t len :
       {k_max_frame_bytes + 1, 0x7fffffffu, 0xffffffffu}) {
    std::vector<std::uint8_t> frame;
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<std::uint8_t>((len >> (8 * i)) & 0xffu));
    }
    frame.resize(64, 0);  // garbage crc + bytes; length check must fire first
    const decode_result r = decode_frame(frame.data(), frame.size());
    EXPECT_EQ(r.status, decode_status::corrupt);
    EXPECT_NE(r.error.find("exceeds limit"), std::string::npos) << r.error;
  }
}

TEST(WireCodecCorpus, EmptyPayloadIsCorrupt) {
  const std::vector<std::uint8_t> frame = frame_with_payload({});
  const decode_result r = decode_frame(frame.data(), frame.size());
  EXPECT_EQ(r.status, decode_status::corrupt);
}

TEST(WireCodecCorpus, TruncatedInteriorStringIsCorrupt) {
  // A hello whose token length field claims more bytes than the payload
  // holds: the CRC is valid (we frame the damaged payload ourselves), so
  // only the payload decoder's bounds checks stand between this and an
  // out-of-bounds read.
  std::vector<std::uint8_t> payload;
  payload.push_back(0x01);  // hello
  for (int i = 0; i < 4; ++i) payload.push_back(0x01);  // version
  payload.push_back(0xff);  // token length 0x400000ff...
  payload.push_back(0x00);
  payload.push_back(0x00);
  payload.push_back(0x40);
  payload.push_back('x');  // one actual byte
  const std::vector<std::uint8_t> frame = frame_with_payload(payload);
  const decode_result r = decode_frame(frame.data(), frame.size());
  EXPECT_EQ(r.status, decode_status::corrupt);
}

TEST(WireCodecCorpus, TrailingGarbageAfterValidPayloadIsCorrupt) {
  std::vector<std::uint8_t> payload;
  payload.push_back(0x03);  // cancel: kind byte only
  payload.push_back(0x99);  // trailing garbage the decoder must not ignore
  const std::vector<std::uint8_t> frame = frame_with_payload(payload);
  const decode_result r = decode_frame(frame.data(), frame.size());
  EXPECT_EQ(r.status, decode_status::corrupt);
}

// -- splitter ---------------------------------------------------------------

TEST(WireCodec, SplitterReassemblesByteAtATime) {
  std::vector<std::uint8_t> stream;
  const message msgs[] = {message{hello_msg{}}, message{sample_submit()},
                          message{sample_result()}};
  for (const message& m : msgs) {
    const auto f = encode_frame(m);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  frame_splitter splitter;
  std::vector<msg_kind> got;
  for (const std::uint8_t b : stream) {
    splitter.feed(&b, 1);
    for (;;) {
      message m;
      std::string err;
      const decode_status st = splitter.next(m, err);
      if (st != decode_status::ok) {
        ASSERT_EQ(st, decode_status::need_more) << err;
        break;
      }
      got.push_back(kind_of(m));
    }
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], msg_kind::hello);
  EXPECT_EQ(got[1], msg_kind::submit);
  EXPECT_EQ(got[2], msg_kind::result);
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(WireCodec, SplitterReportsCorruptionAfterGoodFrames) {
  frame_splitter splitter;
  const auto good = encode_frame(message{bye_msg{}});
  splitter.feed(good.data(), good.size());
  const auto bad = frame_with_payload({0x7f});  // bogus kind, valid crc
  splitter.feed(bad.data(), bad.size());
  message m;
  std::string err;
  EXPECT_EQ(splitter.next(m, err), decode_status::ok);
  EXPECT_EQ(splitter.next(m, err), decode_status::corrupt);
  EXPECT_FALSE(err.empty());
}

// -- fault injection --------------------------------------------------------

TEST(WireCodec, CrcFlipInjectionMakesReceiverReject) {
  disarm_guard guard;
  testing::arm("wire_crc_flip");
  const auto frame = encode_frame(message{sample_submit()});
  EXPECT_GE(testing::fired_count(testing::fault_point::wire_crc_flip), 1u);
  testing::disarm();
  const decode_result r = decode_frame(frame.data(), frame.size());
  EXPECT_EQ(r.status, decode_status::corrupt);
  EXPECT_NE(r.error.find("CRC"), std::string::npos) << r.error;
}

TEST(WireCodec, ShortReadInjectionTruncates) {
  disarm_guard guard;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<std::uint8_t> bytes(100, 0xab);
  ASSERT_TRUE(wire_write_all(fds[0], bytes.data(), bytes.size()));
  testing::arm("wire_short_read");
  std::uint8_t buf[100];
  const ssize_t n = wire_read(fds[1], buf, sizeof buf);
  EXPECT_EQ(n, 50);  // half delivered, half lost: a torn read
  testing::disarm();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireCodec, ShortWriteInjectionReportsPeerGone) {
  disarm_guard guard;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  testing::arm("wire_short_write");
  const std::vector<std::uint8_t> bytes(100, 0xcd);
  EXPECT_FALSE(wire_write_all(fds[0], bytes.data(), bytes.size()));
  testing::disarm();
  std::uint8_t buf[100];
  const ssize_t n = ::read(fds[1], buf, sizeof buf);
  EXPECT_EQ(n, 50);  // the truncated half really went out
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireCodec, RejectedFramesAreDumpedForCi) {
  const std::string dir =
      std::filesystem::temp_directory_path() /
      ("vabi-frame-dump-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const char* prev = std::getenv("VABI_FRAME_DUMP_DIR");
  const std::string prev_dir = prev != nullptr ? prev : "";
  ::setenv("VABI_FRAME_DUMP_DIR", dir.c_str(), 1);
  const auto bad = frame_with_payload({0x66});  // bogus kind
  const decode_result r = decode_frame(bad.data(), bad.size());
  if (prev != nullptr) {
    ::setenv("VABI_FRAME_DUMP_DIR", prev_dir.c_str(), 1);
  } else {
    ::unsetenv("VABI_FRAME_DUMP_DIR");
  }
  EXPECT_EQ(r.status, decode_status::corrupt);
  bool found = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("frame-", 0) == 0) {
      EXPECT_EQ(std::filesystem::file_size(entry.path()), bad.size());
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no frame dump written to " << dir;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vabi::serve
