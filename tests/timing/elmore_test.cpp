#include "timing/elmore.hpp"

#include <gtest/gtest.h>

#include "tree/generators.hpp"

namespace vabi::timing {
namespace {

class ElmoreTest : public ::testing::Test {
 protected:
  wire_model wire_{0.1, 0.002};  // ohm/um, pF/um
  buffer_library lib_ = single_buffer_library();
};

TEST_F(ElmoreTest, UnbufferedSingleWire) {
  tree::routing_tree t{{0.0, 0.0}};
  t.add_sink(t.root(), {100.0, 0.0}, 0.05, 0.0);
  buffer_assignment a(t.num_nodes());
  const auto r = evaluate_buffered_tree(t, wire_, lib_, a, 0.0);
  // RAT = 0 - (r*l*C + r*c*l^2/2) = -(0.1*100*0.05 + 0.1*0.002*10^4/2) = -1.5.
  EXPECT_NEAR(r.root_rat_ps, -1.5, 1e-12);
  EXPECT_NEAR(r.root_load_pf, 0.05 + 0.002 * 100.0, 1e-12);
}

TEST_F(ElmoreTest, DriverResistanceChargesRootLoad) {
  tree::routing_tree t{{0.0, 0.0}};
  t.add_sink(t.root(), {100.0, 0.0}, 0.05, 0.0);
  buffer_assignment a(t.num_nodes());
  const auto r0 = evaluate_buffered_tree(t, wire_, lib_, a, 0.0);
  const auto r1 = evaluate_buffered_tree(t, wire_, lib_, a, 200.0);
  EXPECT_NEAR(r1.root_rat_ps, r0.root_rat_ps - 200.0 * r0.root_load_pf, 1e-12);
}

TEST_F(ElmoreTest, BranchTakesMinRatAndSumsLoad) {
  tree::routing_tree t{{0.0, 0.0}};
  const auto a = t.add_steiner(t.root(), {0.0, 0.0}, 0.0);
  t.add_sink(a, {100.0, 0.0}, 0.05, 0.0);    // slower branch
  t.add_sink(a, {10.0, 0.0}, 0.01, 100.0);   // fast branch, generous RAT
  buffer_assignment asg(t.num_nodes());
  const auto r = evaluate_buffered_tree(t, wire_, lib_, asg, 0.0);
  EXPECT_NEAR(r.root_rat_ps, -1.5, 1e-12);  // min is the slow branch
  EXPECT_NEAR(r.root_load_pf, (0.05 + 0.2) + (0.01 + 0.02), 1e-12);
}

TEST_F(ElmoreTest, BufferShieldsDownstreamLoad) {
  // Long wire + big sink under the *default* (global-wire) RC: a midpoint
  // buffer must help. (The fixture's heavy test wire is deliberately not
  // used here -- at 2 fF/um no single repeater pays off.)
  const wire_model wire{};
  tree::routing_tree t{{0.0, 0.0}};
  const auto mid = t.add_steiner(t.root(), {4000.0, 0.0});
  t.add_sink(mid, {8000.0, 0.0}, 0.2, 0.0);
  buffer_assignment without(t.num_nodes());
  buffer_assignment with(t.num_nodes());
  with.place(mid, 0);
  const auto r0 = evaluate_buffered_tree(t, wire, lib_, without, 0.0);
  const auto r1 = evaluate_buffered_tree(t, wire, lib_, with, 0.0);
  EXPECT_GT(r1.root_rat_ps, r0.root_rat_ps);
  // Load seen upstream is now the wire plus the buffer's input cap.
  EXPECT_NEAR(r1.root_load_pf, lib_[0].cap_pf + wire.wire_cap(4000.0), 1e-12);
}

TEST_F(ElmoreTest, BufferFormulaExact) {
  tree::routing_tree t{{0.0, 0.0}};
  const auto n = t.add_steiner(t.root(), {0.0, 0.0}, 0.0);
  t.add_sink(n, {100.0, 0.0}, 0.05, 0.0);
  buffer_assignment a(t.num_nodes());
  a.place(n, 0);
  const auto r = evaluate_buffered_tree(t, wire_, lib_, a, 0.0);
  // At n (before buffer): load = 0.25, rat = -1.5.
  // Buffered: rat = -1.5 - T_b - R_b*0.25, load = C_b; root wire length 0.
  const double expect =
      -1.5 - lib_[0].delay_ps - lib_[0].res_ohm * (0.05 + 0.2);
  EXPECT_NEAR(r.root_rat_ps, expect, 1e-9);
  EXPECT_NEAR(r.root_load_pf, lib_[0].cap_pf, 1e-12);
}

TEST_F(ElmoreTest, CustomDeviceValuesOverrideNominal) {
  tree::routing_tree t{{0.0, 0.0}};
  const auto n = t.add_steiner(t.root(), {0.0, 0.0}, 0.0);
  t.add_sink(n, {100.0, 0.0}, 0.05, 0.0);
  buffer_assignment a(t.num_nodes());
  a.place(n, 0);
  const auto nominal = evaluate_buffered_tree(t, wire_, lib_, a, 0.0);
  const auto slower = evaluate_buffered_tree(
      t, wire_, lib_, a, 0.0, [&](tree::node_id, buffer_index b) {
        return device_values{lib_[b].cap_pf, lib_[b].delay_ps + 10.0,
                             lib_[b].res_ohm};
      });
  EXPECT_NEAR(slower.root_rat_ps, nominal.root_rat_ps - 10.0, 1e-9);
}

TEST_F(ElmoreTest, SinkRatPropagates) {
  tree::routing_tree t{{0.0, 0.0}};
  t.add_sink(t.root(), {100.0, 0.0}, 0.05, -42.0);
  buffer_assignment a(t.num_nodes());
  const auto r = evaluate_buffered_tree(t, wire_, lib_, a, 0.0);
  EXPECT_NEAR(r.root_rat_ps, -42.0 - 1.5, 1e-12);
}

TEST_F(ElmoreTest, RejectsMismatchedAssignment) {
  tree::routing_tree t{{0.0, 0.0}};
  t.add_sink(t.root(), {100.0, 0.0}, 0.05, 0.0);
  buffer_assignment a(99);
  EXPECT_THROW(evaluate_buffered_tree(t, wire_, lib_, a, 0.0),
               std::invalid_argument);
}

TEST_F(ElmoreTest, RejectsBufferAtSource) {
  tree::routing_tree t{{0.0, 0.0}};
  t.add_sink(t.root(), {100.0, 0.0}, 0.05, 0.0);
  buffer_assignment a(t.num_nodes());
  a.place(t.root(), 0);
  EXPECT_THROW(evaluate_buffered_tree(t, wire_, lib_, a, 0.0),
               std::invalid_argument);
}

TEST(BufferAssignment, CountAndHistogram) {
  buffer_assignment a(5);
  EXPECT_EQ(a.count(), 0u);
  a.place(1, 0);
  a.place(3, 2);
  a.place(4, 0);
  EXPECT_EQ(a.count(), 3u);
  const auto h = a.histogram(3);
  EXPECT_EQ(h[0], 2u);
  EXPECT_EQ(h[1], 0u);
  EXPECT_EQ(h[2], 1u);
  a.remove(3);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_FALSE(a.has_buffer(3));
}

}  // namespace
}  // namespace vabi::timing
