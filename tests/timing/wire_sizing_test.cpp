#include "timing/wire_sizing.hpp"

#include <gtest/gtest.h>

#include "timing/elmore.hpp"
#include "tree/generators.hpp"

namespace vabi::timing {
namespace {

TEST(WireMenu, SingleWidthMenu) {
  const wire_menu m{wire_model{}};
  EXPECT_EQ(m.size(), 1u);
  EXPECT_FALSE(m.sizing_enabled());
  EXPECT_DOUBLE_EQ(m.multiplier(0), 1.0);
}

TEST(WireMenu, MultipliersScaleRandC) {
  const wire_model base{0.2, 0.0002};
  const wire_menu m{base, {1.0, 2.0, 4.0}};
  EXPECT_TRUE(m.sizing_enabled());
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[1].res_per_um, 0.1);
  EXPECT_DOUBLE_EQ(m[1].cap_per_um, 0.0004);
  EXPECT_DOUBLE_EQ(m[2].res_per_um, 0.05);
  EXPECT_DOUBLE_EQ(m[2].cap_per_um, 0.0008);
}

TEST(WireMenu, FringeCapDoesNotScale) {
  const wire_model base{0.2, 0.0002};
  const wire_menu m{base, {1.0, 2.0}, 0.0001};
  EXPECT_DOUBLE_EQ(m[0].cap_per_um, 0.0003);
  EXPECT_DOUBLE_EQ(m[1].cap_per_um, 0.0005);
}

TEST(WireMenu, RejectsBadInput) {
  const wire_model base{0.2, 0.0002};
  EXPECT_THROW(wire_menu(base, {}), std::invalid_argument);
  EXPECT_THROW(wire_menu(base, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(wire_menu(base, {1.0}, -0.1), std::invalid_argument);
}

TEST(WireAssignment, DefaultsAndHistogram) {
  wire_assignment a(5);
  EXPECT_EQ(a.count_nondefault(), 0u);
  a.set(2, 1);
  a.set(4, 2);
  EXPECT_EQ(a.count_nondefault(), 2u);
  EXPECT_EQ(a.width(2), 1u);
  EXPECT_EQ(a.width(99), 0u);  // out-of-range reads as default
  const auto h = a.histogram(3);
  EXPECT_EQ(h[0], 3u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 1u);
}

TEST(WireSizing, ElmoreEvaluationUsesSelectedWidths) {
  // Single long wire: a wider (lower-R) wire into a big sink is faster.
  tree::routing_tree t{{0.0, 0.0}};
  const auto s = t.add_sink(t.root(), {4000.0, 0.0}, 0.2, 0.0);
  const auto lib = single_buffer_library();
  buffer_assignment none(t.num_nodes());
  const wire_menu menu{wire_model{}, {1.0, 3.0}};

  wire_assignment narrow(t.num_nodes());
  wire_assignment wide(t.num_nodes());
  wide.set(s, 1);
  const auto r_narrow =
      evaluate_buffered_tree(t, menu, narrow, lib, none, 0.0);
  const auto r_wide = evaluate_buffered_tree(t, menu, wide, lib, none, 0.0);
  EXPECT_GT(r_wide.root_rat_ps, r_narrow.root_rat_ps);
  EXPECT_GT(r_wide.root_load_pf, r_narrow.root_load_pf);  // more wire cap
}

TEST(WireSizing, SingleWidthOverloadMatchesBase) {
  tree::random_tree_options to;
  to.num_sinks = 20;
  to.seed = 3;
  const auto t = tree::make_random_tree(to);
  const auto lib = standard_library();
  buffer_assignment a(t.num_nodes());
  a.place(2, 0);
  const wire_model base{};
  const auto r1 = evaluate_buffered_tree(t, base, lib, a, 100.0);
  const auto r2 = evaluate_buffered_tree(t, wire_menu{base}, wire_assignment{},
                                         lib, a, 100.0);
  EXPECT_DOUBLE_EQ(r1.root_rat_ps, r2.root_rat_ps);
}

}  // namespace
}  // namespace vabi::timing
