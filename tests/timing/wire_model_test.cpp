#include "timing/wire_model.hpp"

#include <gtest/gtest.h>

namespace vabi::timing {
namespace {

TEST(WireModel, CapScalesLinearly) {
  wire_model w;
  EXPECT_DOUBLE_EQ(w.wire_cap(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.wire_cap(1000.0), w.cap_per_um * 1000.0);
  EXPECT_DOUBLE_EQ(w.wire_cap(2000.0), 2.0 * w.wire_cap(1000.0));
}

TEST(WireModel, ElmoreDelayFormula) {
  wire_model w{0.1, 0.002};  // r = 0.1 ohm/um, c = 0.002 pF/um
  // delay = r*l*L + r*c*l^2/2 = 0.1*100*0.5 + 0.1*0.002*10000/2 = 5 + 1.
  EXPECT_DOUBLE_EQ(w.wire_delay(100.0, 0.5), 6.0);
  EXPECT_DOUBLE_EQ(w.wire_delay(0.0, 0.5), 0.0);
}

TEST(WireModel, QuadraticInLengthWithoutLoad) {
  wire_model w;
  const double d1 = w.wire_delay(500.0, 0.0);
  const double d2 = w.wire_delay(1000.0, 0.0);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-12);
}

TEST(WireModel, SplittingWireWithRepeaterlessJointIsExact) {
  // Elmore: a wire of length 2l into load L equals wire l into (wire l into L)
  // only when the pi models compose; check the identity used by the DP:
  // delay(2l, L) = delay(l, L + c*l) + delay(l, L).
  wire_model w;
  const double l = 700.0;
  const double load = 0.03;
  const double whole = w.wire_delay(2.0 * l, load);
  const double split =
      w.wire_delay(l, load + w.wire_cap(l)) + w.wire_delay(l, load);
  EXPECT_NEAR(whole, split, 1e-9);
}

TEST(WireModel, ValidateRejectsNegative) {
  wire_model w{-1.0, 0.001};
  EXPECT_THROW(w.validate(), std::invalid_argument);
  wire_model w2{0.1, -0.001};
  EXPECT_THROW(w2.validate(), std::invalid_argument);
  wire_model ok;
  EXPECT_NO_THROW(ok.validate());
}

TEST(WireModel, DefaultUnitsProducePicoseconds) {
  // 1 mm of default wire into a 23.4 fF buffer: sanity band in ps.
  wire_model w;
  const double d = w.wire_delay(1000.0, 0.0234);
  EXPECT_GT(d, 1.0);
  EXPECT_LT(d, 100.0);
}

}  // namespace
}  // namespace vabi::timing
