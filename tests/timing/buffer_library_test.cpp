#include "timing/buffer_library.hpp"

#include <gtest/gtest.h>

namespace vabi::timing {
namespace {

TEST(BufferLibrary, StandardLibraryHasThreeSizes) {
  const buffer_library lib = standard_library();
  ASSERT_EQ(lib.size(), 3u);
  // Bigger buffers: more input cap, less output resistance.
  EXPECT_LT(lib[0].cap_pf, lib[1].cap_pf);
  EXPECT_LT(lib[1].cap_pf, lib[2].cap_pf);
  EXPECT_GT(lib[0].res_ohm, lib[1].res_ohm);
  EXPECT_GT(lib[1].res_ohm, lib[2].res_ohm);
}

TEST(BufferLibrary, SingleBufferLibrary) {
  const buffer_library lib = single_buffer_library();
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_FALSE(lib.empty());
}

TEST(BufferLibrary, AddReturnsDenseIndices) {
  buffer_library lib;
  EXPECT_TRUE(lib.empty());
  const auto a = lib.add({"a", 0.01, 10.0, 500.0});
  const auto b = lib.add({"b", 0.02, 12.0, 250.0});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(lib[b].name, "b");
}

TEST(BufferLibrary, RejectsInvalidCharacteristics) {
  buffer_library lib;
  EXPECT_THROW(lib.add({"bad", 0.0, 10.0, 500.0}), std::invalid_argument);
  EXPECT_THROW(lib.add({"bad", 0.01, -1.0, 500.0}), std::invalid_argument);
  EXPECT_THROW(lib.add({"bad", 0.01, 10.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(buffer_library({{"bad", -0.01, 10.0, 500.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vabi::timing
