// Differential suite for the adaptive dense representation and the
// runtime-dispatched SIMD kernels.
//
// The contract under test (kernels.hpp "Bit-identity contract"): every pooled
// canonical-form operation produces the same *bits* whether the result is
// computed on the sparse (id, coeff) path or the dense coefficient-plane
// path, and on every instruction set the CPU can run. The golden engine
// hashes depend on this; here it is proven directly by running randomized
// operand sets through every (representation, ISA) combination and comparing
// nominals, term supports and coefficient bit patterns against the scalar
// sparse reference.
#include "stats/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "stats/linear_form.hpp"
#include "stats/rng.hpp"
#include "stats/term_pool.hpp"
#include "stats/variation_space.hpp"

namespace vabi::stats {
namespace {

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

/// Forces one kernel ISA for the scope; restores autodetection (which honors
/// VABI_FORCE_KERNEL, so a suite-wide env override survives) on exit.
struct isa_guard {
  explicit isa_guard(kernels::kernel_isa isa) {
    kernels::set_forced_isa(kernels::to_string(isa));
  }
  ~isa_guard() { kernels::set_forced_isa(nullptr); }
};

/// Forces the dense-representation mode for the scope; restores the
/// environment default on exit (so a suite-wide VABI_FORCE_DENSE survives).
struct dense_guard {
  explicit dense_guard(int mode) { set_force_dense(mode); }
  ~dense_guard() { reset_force_dense_from_env(); }
};

std::vector<kernels::kernel_isa> reachable_isas() {
  std::vector<kernels::kernel_isa> out{kernels::kernel_isa::scalar};
  for (const auto isa :
       {kernels::kernel_isa::sse2, kernels::kernel_isa::avx2,
        kernels::kernel_isa::neon}) {
    if (kernels::isa_available(isa)) out.push_back(isa);
  }
  return out;
}

variation_space make_space(std::size_t num_sources, std::uint64_t seed) {
  variation_space space;
  auto rng = make_rng(seed * 977 + 13);
  std::uniform_real_distribution<double> sigma(0.25, 2.0);
  for (std::size_t i = 0; i < num_sources; ++i) {
    space.add_source(source_kind::random_device, sigma(rng));
  }
  return space;
}

/// A random form over ids [0, num_sources): each id present with probability
/// `density`; coefficients span signs and magnitudes and are occasionally an
/// exact (signed) zero -- the corner that distinguishes a true per-slot
/// select from a sum-with-zero.
linear_form random_form(std::mt19937_64& rng, std::size_t num_sources,
                        double density) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> coeff(-3.0, 3.0);
  std::uniform_real_distribution<double> mean(-500.0, 500.0);
  linear_form f{mean(rng)};
  for (std::size_t id = 0; id < num_sources; ++id) {
    if (unit(rng) >= density) continue;
    double c = coeff(rng);
    const double r = unit(rng);
    if (r < 0.05) c = 0.0;
    if (r >= 0.05 && r < 0.10) c = -0.0;
    if (r >= 0.10 && r < 0.15) c *= 1e-9;  // term-drop fodder
    f.add_term(static_cast<source_id>(id), c);
  }
  return f;
}

/// Canonical (id, coefficient-bits) list of a form, independent of its
/// representation: a copy is re-homed (which sparsifies dense planes).
struct form_bits {
  std::uint64_t nominal = 0;
  std::vector<std::pair<source_id, std::uint64_t>> terms;

  bool operator==(const form_bits&) const = default;
};

form_bits bits_of(const linear_form& f) {
  linear_form c = f;
  c.own_terms();
  form_bits out;
  out.nominal = std::bit_cast<std::uint64_t>(c.mean());
  for (const auto& t : c.terms()) {
    out.terms.emplace_back(t.id, std::bit_cast<std::uint64_t>(t.coeff));
  }
  return out;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Everything one (representation, ISA) configuration computes from a fixed
/// operand pair: the pooled form-producing ops and the moment reductions,
/// all captured as bit patterns.
struct snapshot {
  form_bits add, sub, sub_scaled, add_scaled, blend, smin, smin_eps;
  std::uint64_t var_a = 0, var_b = 0, cov = 0, sigma_diff = 0;
  bool eq_ab = false, eq_self = true;

  bool operator==(const snapshot&) const = default;
};

snapshot run_ops(const linear_form& a, const linear_form& b,
                 const variation_space& space) {
  term_pool pool;
  snapshot s;
  s.add = bits_of(pooled_add(a, b, pool));
  s.sub = bits_of(pooled_sub(a, b, pool));
  s.sub_scaled = bits_of(pooled_sub_scaled(a, 3.25, b, pool));
  s.add_scaled = bits_of(pooled_add_scaled(a, -0.5, b, pool));
  s.blend = bits_of(pooled_blend(0.375, a, 0.625, b, pool));
  s.smin = bits_of(statistical_min(a, b, space, pool));
  s.smin_eps = bits_of(statistical_min(a, b, space, pool, 1e-6));
  // Re-home the operands through a pooled op so the active policy decides
  // their representation; the moment reductions then exercise that path.
  const linear_form zero{0.0};
  const linear_form ra = pooled_add(a, zero, pool);
  const linear_form rb = pooled_add(b, zero, pool);
  s.var_a = bits(ra.variance(space));
  s.var_b = bits(rb.variance(space));
  s.cov = bits(covariance(ra, rb, space));
  s.sigma_diff = bits(sigma_of_difference(ra, rb, space));
  s.eq_ab = (ra == rb);
  s.eq_self = (ra == ra) && (pooled_add(a, zero, pool) == ra);
  return s;
}

// ---------------------------------------------------------------------------
// The differential sweep.
// ---------------------------------------------------------------------------

TEST(KernelsDifferential, PooledOpsBitIdenticalAcrossRepsAndIsas) {
  const auto isas = reachable_isas();
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    for (const std::size_t nsrc : {8u, 24u, 64u, 200u}) {
      const variation_space space = make_space(nsrc, seed);
      auto rng = make_rng(seed);
      // Densities chosen to hit full planes, half-full planes, tiny sparse
      // forms (inline storage), and asymmetric supports.
      const double da = seed % 2 == 0 ? 1.0 : 0.6;
      const double db = seed % 3 == 0 ? 0.1 : 0.9;
      const linear_form a = random_form(rng, nsrc, da);
      const linear_form b = random_form(rng, nsrc, db);

      snapshot ref;
      {
        isa_guard isa{kernels::kernel_isa::scalar};
        dense_guard dense{-1};
        ref = run_ops(a, b, space);
      }
      for (const auto isa : isas) {
        for (const int mode : {-1, +1}) {
          isa_guard ig{isa};
          dense_guard dg{mode};
          const snapshot got = run_ops(a, b, space);
          EXPECT_EQ(got, ref)
              << "isa=" << kernels::to_string(isa) << " dense=" << mode
              << " seed=" << seed << " nsrc=" << nsrc;
        }
      }
    }
  }
}

TEST(KernelsDifferential, AdaptivePolicyMatchesForcedPaths) {
  // The adaptive default must pick *some* mix of the two representations --
  // whichever it picks, results must equal the forced-sparse reference.
  const variation_space space = make_space(64, 99);
  auto rng = make_rng(99);
  const linear_form a = random_form(rng, 64, 1.0);
  const linear_form b = random_form(rng, 64, 0.95);
  snapshot ref;
  {
    isa_guard isa{kernels::kernel_isa::scalar};
    dense_guard dense{-1};
    ref = run_ops(a, b, space);
  }
  dense_guard dense{0};  // adaptive
  const std::size_t dense0 = dense_forms_produced();
  EXPECT_EQ(run_ops(a, b, space), ref);
  EXPECT_GT(dense_forms_produced(), dense0)
      << "saturated 64-source operands should have switched dense";
}

// ---------------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------------

TEST(KernelsDifferential, SaturatedTightnessDropsLoserTerms) {
  // A overwhelmingly wins the statistical min: the tightness probability
  // saturates to exactly 1, the blend's losing side scales by exactly 0.0,
  // and the loser's ids must vanish from the result -- identically on both
  // representations (the dense path views a zero-scaled side as an empty
  // plane rather than multiplying through zero).
  const variation_space space = make_space(32, 7);
  linear_form a{-1e6};
  linear_form b{1e6};
  for (source_id id = 0; id < 32; ++id) {
    a.add_term(id, 0.5 + 0.01 * id);
    b.add_term(id, -0.25 - 0.01 * id);
  }
  form_bits ref;
  {
    dense_guard dense{-1};
    isa_guard isa{kernels::kernel_isa::scalar};
    term_pool pool;
    ref = bits_of(statistical_min(a, b, space, pool, 1e-3));
  }
  for (const auto isa : reachable_isas()) {
    dense_guard dense{+1};
    isa_guard ig{isa};
    term_pool pool;
    const linear_form m = statistical_min(a, b, space, pool, 1e-3);
    EXPECT_EQ(bits_of(m), ref) << kernels::to_string(isa);
    // Winner takes all: the result is exactly a's canonical form.
    EXPECT_EQ(bits_of(m), bits_of(a)) << kernels::to_string(isa);
  }
}

TEST(KernelsDifferential, RelativeEpsilonDropIdenticalAcrossPaths) {
  // drop_rel_eps > 0 prunes blend results against eps * max|coeff|; the
  // threshold and the survivors must agree bit-for-bit across paths even
  // when coefficients straddle the cutoff.
  const variation_space space = make_space(48, 21);
  auto rng = make_rng(21);
  linear_form a{10.0};
  linear_form b{-4.0};
  std::uniform_real_distribution<double> tiny(-1e-7, 1e-7);
  std::uniform_real_distribution<double> big(-2.0, 2.0);
  for (source_id id = 0; id < 48; ++id) {
    a.add_term(id, id % 3 == 0 ? tiny(rng) : big(rng));
    b.add_term(id, id % 4 == 0 ? tiny(rng) : big(rng));
  }
  form_bits ref;
  {
    dense_guard dense{-1};
    isa_guard isa{kernels::kernel_isa::scalar};
    term_pool pool;
    ref = bits_of(statistical_min(a, b, space, pool, 1e-4));
  }
  for (const auto isa : reachable_isas()) {
    for (const int mode : {-1, +1}) {
      dense_guard dense{mode};
      isa_guard ig{isa};
      term_pool pool;
      EXPECT_EQ(bits_of(statistical_min(a, b, space, pool, 1e-4)), ref)
          << kernels::to_string(isa) << " dense=" << mode;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch and override hooks.
// ---------------------------------------------------------------------------

TEST(KernelsDispatch, ForcedIsaInstallsRequestedTable) {
  for (const auto isa : reachable_isas()) {
    const auto installed = kernels::set_forced_isa(kernels::to_string(isa));
    EXPECT_EQ(installed, isa);
    EXPECT_EQ(kernels::active_isa(), isa);
    EXPECT_EQ(kernels::active().isa, isa);
    EXPECT_EQ(kernels::table_for(isa).isa, isa);
  }
  kernels::set_forced_isa(nullptr);
}

TEST(KernelsDispatch, UnavailableIsaClampsToBestAvailable) {
#if defined(__x86_64__) || defined(_M_X64)
  const auto got = kernels::set_forced_isa("neon");
  EXPECT_NE(got, kernels::kernel_isa::neon);
  EXPECT_TRUE(kernels::isa_available(got));
#else
  const auto got = kernels::set_forced_isa("avx2");
  EXPECT_NE(got, kernels::kernel_isa::avx2);
  EXPECT_TRUE(kernels::isa_available(got));
#endif
  kernels::set_forced_isa(nullptr);
}

TEST(KernelsDispatch, KernelEnvOverrideHonored) {
  // set_forced_isa(nullptr) re-resolves from VABI_FORCE_KERNEL, which is how
  // the CI scalar job pins the whole suite.
  ::setenv("VABI_FORCE_KERNEL", "scalar", 1);
  kernels::set_forced_isa(nullptr);
  EXPECT_EQ(kernels::active_isa(), kernels::kernel_isa::scalar);
  ::unsetenv("VABI_FORCE_KERNEL");
  kernels::set_forced_isa(nullptr);
  EXPECT_TRUE(kernels::isa_available(kernels::active_isa()));
}

TEST(KernelsDispatch, DenseEnvOverrideHonored) {
  const variation_space space = make_space(8, 3);
  auto rng = make_rng(3);
  const linear_form a = random_form(rng, 8, 1.0);
  const linear_form b = random_form(rng, 8, 1.0);
  // An 8-slot plane is below the adaptive threshold; only the env override
  // can make it dense.
  ::setenv("VABI_FORCE_DENSE", "1", 1);
  reset_force_dense_from_env();
  {
    term_pool pool;
    const std::size_t dense0 = dense_forms_produced();
    (void)pooled_add(a, b, pool);
    EXPECT_GT(dense_forms_produced(), dense0);
  }
  ::setenv("VABI_FORCE_DENSE", "never", 1);
  reset_force_dense_from_env();
  {
    term_pool pool;
    const std::size_t dense0 = dense_forms_produced();
    (void)pooled_add(a, b, pool);
    EXPECT_EQ(dense_forms_produced(), dense0);
  }
  ::unsetenv("VABI_FORCE_DENSE");
  reset_force_dense_from_env();
}

TEST(KernelsCounters, MergeCountersAdvance) {
  const variation_space space = make_space(32, 5);
  auto rng = make_rng(5);
  const linear_form a = random_form(rng, 32, 1.0);
  const linear_form b = random_form(rng, 32, 1.0);
  dense_guard dense{+1};
  term_pool pool;
  const std::size_t dense0 = dense_forms_produced();
  const std::size_t terms0 = pooled_terms_merged();
  (void)pooled_add(a, b, pool);
  EXPECT_EQ(dense_forms_produced() - dense0, 1u);
  EXPECT_EQ(pooled_terms_merged() - terms0, 32u);
}

// ---------------------------------------------------------------------------
// aligned_doubles (the per-space sigma^2 table's storage).
// ---------------------------------------------------------------------------

TEST(AlignedDoubles, GrowsCopiesAndStaysAligned) {
  kernels::aligned_doubles v;
  for (int i = 0; i < 100; ++i) v.push_back(0.5 * i);
  ASSERT_EQ(v.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  kernels::aligned_doubles c = v;  // copy
  ASSERT_EQ(c.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % 64, 0u);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.data()[i], 0.5 * static_cast<double>(i));
  }
  kernels::aligned_doubles m = std::move(c);  // move steals the buffer
  ASSERT_EQ(m.size(), 100u);
  EXPECT_EQ(m.data()[99], 0.5 * 99);
  c = m;  // copy-assign back over the moved-from object
  ASSERT_EQ(c.size(), 100u);
  EXPECT_EQ(c.data()[42], 21.0);
}

TEST(AlignedDoubles, SigmaTableMatchesVariance) {
  const variation_space space = make_space(50, 77);
  const double* s2 = space.sigma2_data();
  for (source_id id = 0; id < 50; ++id) {
    EXPECT_EQ(bits(s2[id]), bits(space.variance(id)));
  }
}

}  // namespace
}  // namespace vabi::stats
