#include "stats/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "stats/empirical.hpp"
#include "stats/linear_form.hpp"

namespace vabi::stats {
namespace {

TEST(MonteCarloSampler, SampleVectorSizedToSpace) {
  variation_space space;
  space.add_source(source_kind::random_device, 1.0);
  space.add_source(source_kind::spatial, 2.0);
  monte_carlo_sampler sampler{space, 1};
  std::vector<double> s;
  sampler.draw(s);
  EXPECT_EQ(s.size(), 2u);
}

TEST(MonteCarloSampler, ZeroSigmaSourceAlwaysZero) {
  variation_space space;
  space.add_source(source_kind::random_device, 0.0);
  monte_carlo_sampler sampler{space, 7};
  std::vector<double> s;
  for (int i = 0; i < 50; ++i) {
    sampler.draw(s);
    EXPECT_DOUBLE_EQ(s[0], 0.0);
  }
}

TEST(MonteCarloSampler, DeterministicInSeed) {
  variation_space space;
  space.add_source(source_kind::random_device, 1.0);
  monte_carlo_sampler a{space, 42};
  monte_carlo_sampler b{space, 42};
  std::vector<double> sa, sb;
  for (int i = 0; i < 10; ++i) {
    a.draw(sa);
    b.draw(sb);
    EXPECT_DOUBLE_EQ(sa[0], sb[0]);
  }
  monte_carlo_sampler c{space, 43};
  std::vector<double> sc;
  c.draw(sc);
  a.draw(sa);
  EXPECT_NE(sa[0], sc[0]);
}

TEST(MonteCarloSampler, EmpiricalMomentsMatchSigma) {
  variation_space space;
  space.add_source(source_kind::random_device, 3.0);
  monte_carlo_sampler sampler{space, 5};
  std::vector<double> values;
  std::vector<double> s;
  for (int i = 0; i < 20000; ++i) {
    sampler.draw(s);
    values.push_back(s[0]);
  }
  const auto m = compute_moments(values);
  EXPECT_NEAR(m.mean, 0.0, 0.08);
  EXPECT_NEAR(m.stddev, 3.0, 0.08);
}

TEST(MonteCarloSampler, LinearFormSampleMomentsMatchModel) {
  variation_space space;
  const auto x = space.add_source(source_kind::random_device, 1.0);
  const auto y = space.add_source(source_kind::spatial, 2.0);
  linear_form f{5.0, {{x, 2.0}, {y, -1.0}}};
  monte_carlo_sampler sampler{space, 11};
  std::vector<double> values;
  std::vector<double> s;
  for (int i = 0; i < 20000; ++i) {
    sampler.draw(s);
    values.push_back(f.evaluate(s));
  }
  const auto m = compute_moments(values);
  EXPECT_NEAR(m.mean, f.mean(), 0.08);
  EXPECT_NEAR(m.stddev, f.stddev(space), 0.08);
}

TEST(MonteCarloSampler, DrawMany) {
  variation_space space;
  space.add_source(source_kind::random_device, 1.0);
  monte_carlo_sampler sampler{space, 3};
  const auto samples = sampler.draw_many(17);
  EXPECT_EQ(samples.size(), 17u);
  for (const auto& s : samples) EXPECT_EQ(s.size(), 1u);
}

}  // namespace
}  // namespace vabi::stats
