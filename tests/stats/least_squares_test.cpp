#include "stats/least_squares.hpp"

#include <random>

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace vabi::stats {
namespace {

TEST(SolveSpd, Identity) {
  const auto x = solve_spd({1, 0, 0, 1}, {3.0, 4.0}, 2);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(SolveSpd, KnownSystem) {
  // A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0].
  const auto x = solve_spd({4, 2, 2, 3}, {2.0, 1.0}, 2);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
  EXPECT_NEAR(x[1], 0.0, 1e-12);
}

TEST(SolveSpd, RejectsNonSpd) {
  EXPECT_THROW(solve_spd({0, 0, 0, 0}, {1.0, 1.0}, 2), std::invalid_argument);
  EXPECT_THROW(solve_spd({1, 2, 3}, {1.0}, 2), std::invalid_argument);
}

TEST(FitLinear, RecoversExactLinearModel) {
  // y = 2 + 3*a - b, noise-free.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (double a : {-1.0, 0.0, 1.0, 2.0}) {
    for (double b : {-2.0, 0.5, 3.0}) {
      rows.push_back({a, b});
      y.push_back(2.0 + 3.0 * a - b);
    }
  }
  const auto fit = fit_linear(rows, y);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-10);
  EXPECT_NEAR(fit.coeffs[0], 3.0, 1e-10);
  EXPECT_NEAR(fit.coeffs[1], -1.0, 1e-10);
  EXPECT_NEAR(fit.rms_residual, 0.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoisyFitHasReasonableResidual) {
  auto rng = make_rng(31);
  std::normal_distribution<double> noise(0.0, 0.1);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double a = u(rng);
    rows.push_back({a});
    y.push_back(1.0 + 2.0 * a + noise(rng));
  }
  const auto fit = fit_linear(rows, y);
  EXPECT_NEAR(fit.intercept, 1.0, 0.05);
  EXPECT_NEAR(fit.coeffs[0], 2.0, 0.05);
  EXPECT_NEAR(fit.rms_residual, 0.1, 0.03);
  EXPECT_GT(fit.r_squared, 0.97);
}

TEST(FitLinear, RejectsBadShapes) {
  EXPECT_THROW(fit_linear({}, std::vector<double>{}), std::invalid_argument);
  std::vector<std::vector<double>> ragged{{1.0}, {1.0, 2.0}};
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(fit_linear(ragged, y), std::invalid_argument);
  std::vector<std::vector<double>> under{{1.0, 2.0}};
  std::vector<double> y1{1.0};
  EXPECT_THROW(fit_linear(under, y1), std::invalid_argument);
}

}  // namespace
}  // namespace vabi::stats
