#include "stats/variation_space.hpp"

#include <gtest/gtest.h>

namespace vabi::stats {
namespace {

TEST(VariationSpace, StartsEmpty) {
  variation_space space;
  EXPECT_TRUE(space.empty());
  EXPECT_EQ(space.size(), 0u);
}

TEST(VariationSpace, IssuesDenseIds) {
  variation_space space;
  const auto a = space.add_source(source_kind::random_device, 1.0);
  const auto b = space.add_source(source_kind::spatial, 2.0);
  const auto c = space.add_source(source_kind::inter_die, 0.5);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(space.size(), 3u);
}

TEST(VariationSpace, StoresSigmaAndKind) {
  variation_space space;
  const auto id = space.add_source(source_kind::spatial, 2.5, "Y7");
  EXPECT_DOUBLE_EQ(space.sigma(id), 2.5);
  EXPECT_DOUBLE_EQ(space.variance(id), 6.25);
  EXPECT_EQ(space.kind(id), source_kind::spatial);
  EXPECT_EQ(space.name(id), "Y7");
}

TEST(VariationSpace, RejectsNegativeSigma) {
  variation_space space;
  EXPECT_THROW(space.add_source(source_kind::random_device, -1.0),
               std::invalid_argument);
}

TEST(VariationSpace, AllowsZeroSigma) {
  variation_space space;
  const auto id = space.add_source(source_kind::parametric, 0.0);
  EXPECT_DOUBLE_EQ(space.variance(id), 0.0);
}

TEST(VariationSpace, CountsByKind) {
  variation_space space;
  space.add_source(source_kind::random_device, 1.0);
  space.add_source(source_kind::random_device, 1.0);
  space.add_source(source_kind::inter_die, 1.0);
  EXPECT_EQ(space.count(source_kind::random_device), 2u);
  EXPECT_EQ(space.count(source_kind::inter_die), 1u);
  EXPECT_EQ(space.count(source_kind::spatial), 0u);
}

TEST(VariationSpace, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(source_kind::random_device), "random_device");
  EXPECT_STREQ(to_string(source_kind::spatial), "spatial");
  EXPECT_STREQ(to_string(source_kind::inter_die), "inter_die");
  EXPECT_STREQ(to_string(source_kind::parametric), "parametric");
}

}  // namespace
}  // namespace vabi::stats
