// Tests for the tightness-probability statistical min/max (paper eq. 38).
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "stats/linear_form.hpp"
#include "stats/term_pool.hpp"
#include "stats/monte_carlo.hpp"
#include "stats/normal.hpp"
#include "stats/rng.hpp"

namespace vabi::stats {
namespace {

TEST(StatisticalMin, DeterministicInputsGiveExactMin) {
  variation_space space;
  linear_form a{3.0};
  linear_form b{5.0};
  EXPECT_DOUBLE_EQ(statistical_min(a, b, space).mean(), 3.0);
  EXPECT_DOUBLE_EQ(statistical_min(b, a, space).mean(), 3.0);
}

TEST(StatisticalMin, PerfectlyCorrelatedPicksSmallerMean) {
  variation_space space;
  const auto x = space.add_source(source_kind::random_device, 1.0);
  linear_form a{3.0, {{x, 1.0}}};
  linear_form b{5.0, {{x, 1.0}}};
  const linear_form m = statistical_min(a, b, space);
  EXPECT_EQ(m, a);
}

TEST(StatisticalMin, Commutative) {
  variation_space space;
  const auto x = space.add_source(source_kind::random_device, 1.0);
  const auto y = space.add_source(source_kind::random_device, 2.0);
  linear_form a{3.0, {{x, 1.0}}};
  linear_form b{3.5, {{y, 0.5}}};
  const linear_form m1 = statistical_min(a, b, space);
  const linear_form m2 = statistical_min(b, a, space);
  EXPECT_NEAR(m1.mean(), m2.mean(), 1e-12);
  EXPECT_NEAR(m1.variance(space), m2.variance(space), 1e-12);
}

TEST(StatisticalMin, MeanMatchesCainClosedForm) {
  // For independent X ~ N(mu1, s1^2), Y ~ N(mu2, s2^2):
  //   E[min] = mu1*Phi(z) + mu2*Phi(-z) - s*phi(z), z = (mu2-mu1)/s,
  //   s = sqrt(s1^2 + s2^2).
  variation_space space;
  const auto x = space.add_source(source_kind::random_device, 1.5);
  const auto y = space.add_source(source_kind::random_device, 0.8);
  linear_form a{10.0, {{x, 1.0}}};
  linear_form b{10.5, {{y, 1.0}}};
  const double s = std::sqrt(1.5 * 1.5 + 0.8 * 0.8);
  const double z = (10.5 - 10.0) / s;
  const double expected = 10.0 * normal_cdf(z) + 10.5 * normal_cdf(-z) -
                          s * normal_pdf(z);
  EXPECT_NEAR(statistical_min(a, b, space).mean(), expected, 1e-12);
}

TEST(StatisticalMin, MeanBelowBothInputMeansForOverlappingDists) {
  variation_space space;
  const auto x = space.add_source(source_kind::random_device, 2.0);
  const auto y = space.add_source(source_kind::random_device, 2.0);
  linear_form a{0.0, {{x, 1.0}}};
  linear_form b{0.0, {{y, 1.0}}};
  // min of two iid N(0,4): mean = -sigma_diff * phi(0) < 0.
  const linear_form m = statistical_min(a, b, space);
  EXPECT_LT(m.mean(), 0.0);
  EXPECT_NEAR(m.mean(), -std::sqrt(8.0) * normal_pdf(0.0), 1e-12);
}

TEST(StatisticalMax, DualOfMin) {
  variation_space space;
  const auto x = space.add_source(source_kind::random_device, 1.0);
  const auto y = space.add_source(source_kind::random_device, 1.0);
  linear_form a{1.0, {{x, 1.0}}};
  linear_form b{1.2, {{y, 0.7}}};
  const linear_form mx = statistical_max(a, b, space);
  linear_form na = -1.0 * a;
  linear_form nb = -1.0 * b;
  linear_form dual = statistical_min(na, nb, space);
  dual *= -1.0;
  EXPECT_NEAR(mx.mean(), dual.mean(), 1e-12);
  EXPECT_GE(mx.mean(), std::max(a.mean(), b.mean()));
}

// Property test vs Monte Carlo: the canonical-form min tracks the empirical
// mean and variance of min(a, b) across random correlated pairs.
class StatMinMonteCarlo : public ::testing::TestWithParam<int> {};

TEST_P(StatMinMonteCarlo, TracksEmpiricalMoments) {
  variation_space space;
  for (int i = 0; i < 6; ++i) {
    space.add_source(source_kind::random_device, 0.5 + 0.25 * i);
  }
  auto rng = make_rng(1234, static_cast<std::uint64_t>(GetParam()));
  // Positively correlated pairs, as produced by DP merges (branch RATs share
  // downstream and spatial sources with same-sign coefficients). Strongly
  // negative correlation with equal means is the linearization's known worst
  // case and is covered separately below.
  std::uniform_real_distribution<double> coeff(0.0, 1.0);
  std::uniform_real_distribution<double> mean(-2.0, 2.0);
  linear_form a{mean(rng)};
  linear_form b{mean(rng)};
  for (source_id id = 0; id < 6; ++id) {
    a.add_term(id, coeff(rng));
    b.add_term(id, coeff(rng));
  }
  const linear_form m = statistical_min(a, b, space);

  monte_carlo_sampler sampler{space, 999 + static_cast<std::uint64_t>(GetParam())};
  const std::size_t n = 40000;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::vector<double> sample;
  for (std::size_t i = 0; i < n; ++i) {
    sampler.draw(sample);
    const double v = std::min(a.evaluate(sample), b.evaluate(sample));
    sum += v;
    sum_sq += v * v;
  }
  const double mc_mean = sum / n;
  const double mc_var = sum_sq / n - mc_mean * mc_mean;
  // The mean is exact up to MC noise. The variance is only first-order: the
  // tightness-probability linearization drops the selection-variance term,
  // which is a known ~20-30% underestimate when the two inputs cross heavily
  // (weakly correlated, similar means) -- the same bias Visweswariah-style
  // SSTA accepts. The paper's Fig. 6 shows the end-to-end RAT PDF stays
  // accurate because most merges are dominated by one branch.
  EXPECT_NEAR(m.mean(), mc_mean, 0.03 * std::max(1.0, std::abs(mc_mean)) + 0.03);
  EXPECT_NEAR(m.variance(space), mc_var, 0.40 * std::max(0.5, mc_var));
  // The approximation must never *overestimate* spread wildly either.
  EXPECT_LT(m.variance(space), 1.5 * mc_var + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Random, StatMinMonteCarlo, ::testing::Range(0, 12));

TEST(StatisticalMin, KnownVarianceUnderestimateOnAnticorrelatedInputs) {
  // Documented limitation: for strongly anti-correlated inputs with equal
  // means, min(a, b) has large "selection variance" that the first-order
  // linearization drops. The mean stays exact; the variance is biased LOW.
  variation_space space;
  const auto x = space.add_source(source_kind::random_device, 1.0);
  linear_form a{0.0, {{x, 1.0}}};
  linear_form b{0.0, {{x, -1.0}}};  // rho = -1, equal means
  const linear_form m = statistical_min(a, b, space);
  // Exact: min = -|X|, mean -sqrt(2/pi), variance 1 - 2/pi ~ 0.363.
  EXPECT_NEAR(m.mean(), -std::sqrt(2.0 / M_PI), 1e-12);
  EXPECT_LT(m.variance(space), 1.0 - 2.0 / M_PI);  // bias direction: low
}

TEST(StatisticalMin, RelativeEpsilonDropBoundsTermBloat) {
  // Term-bloat regression: the tightness blend t*a + (1-t)*b never removes a
  // term, so folding a chain of mins against branches ~7 sigma worse keeps
  // every branch's source id with weight (1-t) ~ 1e-12 -- the term count
  // grows linearly in the fold depth while the variance contribution is
  // zero to machine precision. A relative drop epsilon of 1e-9 bounds the
  // form size at the cost of a ~eps-relative moment perturbation.
  variation_space space;
  const auto x0 = space.add_source(source_kind::random_device, 1.0);
  constexpr int folds = 40;
  std::vector<linear_form> branches;
  for (int i = 0; i < folds; ++i) {
    const auto xi = space.add_source(source_kind::random_device, 1.0);
    // mean 10 => z ~ 7.1 sigma of the difference: t = Phi(z) is < 1 in
    // double (no exact saturation) but 1-t ~ 1e-12.
    branches.push_back(linear_form{10.0 + 0.01 * i, {{xi, 1.0}}});
  }

  term_pool pool;  // no reset mid-chain: the accumulator borrows from it
  linear_form plain{0.0, {{x0, 1.0}}};
  linear_form dropped = plain;
  for (const auto& b : branches) {
    plain = statistical_min(plain, b, space, pool, /*drop_rel_eps=*/0.0);
    dropped = statistical_min(dropped, b, space, pool, 1e-9);
  }

  // eps == 0 reproduces the historical bloat; eps = 1e-9 bounds it.
  EXPECT_GE(plain.num_terms(), static_cast<std::size_t>(folds));
  EXPECT_LE(dropped.num_terms(), 2u);

  // The dropped form is the same distribution to far better than 1e-6.
  const double sigma = std::sqrt(plain.variance(space));
  EXPECT_NEAR(dropped.mean(), plain.mean(),
              1e-6 * std::max(1.0, std::abs(plain.mean())));
  EXPECT_NEAR(std::sqrt(dropped.variance(space)), sigma, 1e-6 * sigma);
}

}  // namespace
}  // namespace vabi::stats
