#include "stats/empirical.hpp"

#include <random>

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace vabi::stats {
namespace {

TEST(Moments, EmptyAndSingleton) {
  EXPECT_EQ(compute_moments({}).n, 0u);
  const std::vector<double> one{4.0};
  const auto m = compute_moments(one);
  EXPECT_DOUBLE_EQ(m.mean, 4.0);
  EXPECT_DOUBLE_EQ(m.stddev, 0.0);
}

TEST(Moments, KnownSmallSet) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const auto m = compute_moments(v);
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_NEAR(m.stddev, std::sqrt(5.0 / 3.0), 1e-12);  // unbiased
  EXPECT_NEAR(m.skewness, 0.0, 1e-12);
}

TEST(EmpiricalDistribution, RejectsEmpty) {
  EXPECT_THROW(empirical_distribution{std::vector<double>{}},
               std::invalid_argument);
}

TEST(EmpiricalDistribution, QuantilesOfKnownSet) {
  empirical_distribution d{{3.0, 1.0, 2.0, 4.0, 5.0}};
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 5.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 2.0);
  EXPECT_THROW(d.quantile(1.5), std::domain_error);
}

TEST(EmpiricalDistribution, CdfCountsFraction) {
  empirical_distribution d{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(10.0), 1.0);
}

TEST(EmpiricalDistribution, KsDistanceSmallForNormalSamples) {
  auto rng = make_rng(2024);
  std::normal_distribution<double> n(10.0, 2.0);
  std::vector<double> v(20000);
  for (auto& x : v) x = n(rng);
  empirical_distribution d{std::move(v)};
  EXPECT_LT(d.ks_distance_to_normal(10.0, 2.0), 0.02);
  // Against the wrong distribution the distance must be large.
  EXPECT_GT(d.ks_distance_to_normal(12.0, 2.0), 0.3);
}

TEST(EmpiricalDistribution, DensityHistogramIntegratesToOne) {
  auto rng = make_rng(9);
  std::normal_distribution<double> n(0.0, 1.0);
  std::vector<double> v(5000);
  for (auto& x : v) x = n(rng);
  empirical_distribution d{std::move(v)};
  const auto bins = d.density_histogram(40);
  ASSERT_EQ(bins.size(), 40u);
  const double width = bins[1].first - bins[0].first;
  double area = 0.0;
  for (const auto& [x, dens] : bins) area += dens * width;
  EXPECT_NEAR(area, 1.0, 1e-9);
}

TEST(EmpiricalDistribution, HistogramRejectsZeroBins) {
  empirical_distribution d{{1.0, 2.0}};
  EXPECT_THROW(d.density_histogram(0), std::invalid_argument);
}

}  // namespace
}  // namespace vabi::stats
