#include "stats/linear_form.hpp"

#include "stats/normal.hpp"

#include <random>

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace vabi::stats {
namespace {

class LinearFormTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x0_ = space_.add_source(source_kind::random_device, 1.0);
    x1_ = space_.add_source(source_kind::random_device, 2.0);
    x2_ = space_.add_source(source_kind::spatial, 0.5);
  }
  variation_space space_;
  source_id x0_ = 0, x1_ = 0, x2_ = 0;
};

TEST_F(LinearFormTest, DeterministicConstant) {
  linear_form f{3.5};
  EXPECT_DOUBLE_EQ(f.mean(), 3.5);
  EXPECT_TRUE(f.is_deterministic());
  EXPECT_DOUBLE_EQ(f.variance(space_), 0.0);
}

TEST_F(LinearFormTest, ConstructorSortsAndCoalesces) {
  linear_form f{1.0, {{x1_, 2.0}, {x0_, 1.0}, {x1_, 3.0}}};
  EXPECT_EQ(f.num_terms(), 2u);
  EXPECT_DOUBLE_EQ(f.coefficient(x0_), 1.0);
  EXPECT_DOUBLE_EQ(f.coefficient(x1_), 5.0);
  EXPECT_DOUBLE_EQ(f.coefficient(x2_), 0.0);
}

TEST_F(LinearFormTest, AddTermAccumulates) {
  linear_form f{0.0};
  f.add_term(x1_, 1.5);
  f.add_term(x0_, 2.0);
  f.add_term(x1_, 0.5);
  EXPECT_DOUBLE_EQ(f.coefficient(x1_), 2.0);
  EXPECT_DOUBLE_EQ(f.coefficient(x0_), 2.0);
  // terms stay sorted by id
  EXPECT_EQ(f.terms()[0].id, x0_);
  EXPECT_EQ(f.terms()[1].id, x1_);
}

TEST_F(LinearFormTest, VarianceSumsCoeffSquaredTimesSigmaSquared) {
  linear_form f{0.0, {{x0_, 3.0}, {x1_, 1.0}}};
  // 3^2*1^2 + 1^2*2^2 = 13
  EXPECT_DOUBLE_EQ(f.variance(space_), 13.0);
  EXPECT_DOUBLE_EQ(f.stddev(space_), std::sqrt(13.0));
}

TEST_F(LinearFormTest, AdditionMergesSparseTerms) {
  linear_form a{1.0, {{x0_, 1.0}, {x2_, 2.0}}};
  linear_form b{2.0, {{x1_, 3.0}, {x2_, -2.0}}};
  linear_form c = a + b;
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
  EXPECT_DOUBLE_EQ(c.coefficient(x0_), 1.0);
  EXPECT_DOUBLE_EQ(c.coefficient(x1_), 3.0);
  EXPECT_DOUBLE_EQ(c.coefficient(x2_), 0.0);
}

TEST_F(LinearFormTest, SubtractionCancelsSharedTerms) {
  linear_form a{5.0, {{x0_, 1.0}, {x1_, 2.0}}};
  linear_form b{2.0, {{x0_, 1.0}}};
  linear_form d = a - b;
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.coefficient(x0_), 0.0);
  EXPECT_DOUBLE_EQ(d.coefficient(x1_), 2.0);
}

TEST_F(LinearFormTest, ScalarOperations) {
  linear_form f{2.0, {{x0_, 1.0}}};
  f *= 3.0;
  EXPECT_DOUBLE_EQ(f.mean(), 6.0);
  EXPECT_DOUBLE_EQ(f.coefficient(x0_), 3.0);
  f += 1.0;
  EXPECT_DOUBLE_EQ(f.mean(), 7.0);
  f -= 2.0;
  EXPECT_DOUBLE_EQ(f.mean(), 5.0);
  f *= 0.0;
  EXPECT_TRUE(f.is_deterministic());
}

TEST_F(LinearFormTest, CovarianceOnlyCountsSharedSources) {
  linear_form a{0.0, {{x0_, 2.0}, {x1_, 1.0}}};
  linear_form b{0.0, {{x1_, 3.0}, {x2_, 5.0}}};
  // shared: x1 with sigma 2 -> 1*3*4 = 12
  EXPECT_DOUBLE_EQ(covariance(a, b, space_), 12.0);
}

TEST_F(LinearFormTest, CorrelationBounds) {
  linear_form a{0.0, {{x0_, 1.0}}};
  linear_form b{0.0, {{x0_, 2.0}}};
  EXPECT_NEAR(correlation(a, b, space_), 1.0, 1e-12);
  linear_form c{0.0, {{x0_, -1.0}}};
  EXPECT_NEAR(correlation(a, c, space_), -1.0, 1e-12);
  linear_form d{0.0, {{x1_, 1.0}}};
  EXPECT_DOUBLE_EQ(correlation(a, d, space_), 0.0);
  EXPECT_DOUBLE_EQ(correlation(a, linear_form{1.0}, space_), 0.0);
}

TEST_F(LinearFormTest, SigmaOfDifferenceMatchesExplicitSubtraction) {
  linear_form a{1.0, {{x0_, 2.0}, {x1_, 1.0}}};
  linear_form b{4.0, {{x1_, 3.0}, {x2_, 1.0}}};
  const linear_form d = a - b;
  EXPECT_NEAR(sigma_of_difference(a, b, space_), d.stddev(space_), 1e-12);
}

TEST_F(LinearFormTest, ProbGreaterMatchesPaperEq8) {
  // T1 ~ N(10, 1), T2 ~ N(8, 4) (via x1 with sigma 2), independent.
  linear_form t1{10.0, {{x0_, 1.0}}};
  linear_form t2{8.0, {{x1_, 1.0}}};
  // sigma_diff = sqrt(1 + 4) = sqrt(5); P = Phi(2/sqrt(5)).
  EXPECT_NEAR(prob_greater(t1, t2, space_), normal_cdf(2.0 / std::sqrt(5.0)),
              1e-12);
  EXPECT_NEAR(prob_greater(t1, t2, space_) + prob_greater(t2, t1, space_), 1.0,
              1e-12);
}

TEST_F(LinearFormTest, ProbGreaterDegenerate) {
  linear_form a{2.0};
  linear_form b{1.0};
  EXPECT_DOUBLE_EQ(prob_greater(a, b, space_), 1.0);
  EXPECT_DOUBLE_EQ(prob_greater(b, a, space_), 0.0);
  EXPECT_DOUBLE_EQ(prob_greater(a, a, space_), 0.5);
  // Perfectly correlated forms with equal coefficients: difference is const.
  linear_form c{3.0, {{x0_, 1.0}}};
  linear_form d{1.0, {{x0_, 1.0}}};
  EXPECT_DOUBLE_EQ(prob_greater(c, d, space_), 1.0);
}

TEST_F(LinearFormTest, EvaluateAtSample) {
  linear_form f{1.0, {{x0_, 2.0}, {x2_, -1.0}}};
  const std::vector<double> sample{0.5, 9.0, 2.0};
  EXPECT_DOUBLE_EQ(f.evaluate(sample), 1.0 + 2.0 * 0.5 - 1.0 * 2.0);
}

TEST_F(LinearFormTest, PruneZeroTerms) {
  linear_form f{0.0, {{x0_, 1.0}, {x1_, 0.0}, {x2_, 1e-18}}};
  f.prune_zero_terms(1e-15);
  EXPECT_EQ(f.num_terms(), 1u);
  EXPECT_DOUBLE_EQ(f.coefficient(x0_), 1.0);
}

TEST_F(LinearFormTest, PercentileOfForm) {
  linear_form f{10.0, {{x0_, 2.0}}};  // N(10, 4)
  EXPECT_NEAR(percentile(f, space_, 0.5), 10.0, 1e-12);
  EXPECT_NEAR(percentile(f, space_, 0.975), 10.0 + 2.0 * 1.9599639845, 1e-6);
}

// Property test: variance of (a+b) equals Var a + Var b + 2 Cov over random
// sparse forms.
class LinearFormAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(LinearFormAlgebra, VarianceBilinearity) {
  variation_space space;
  for (int i = 0; i < 20; ++i) {
    space.add_source(source_kind::random_device, 0.1 * (i + 1));
  }
  auto rng = make_rng(77, static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<int> pick(0, 19);
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  linear_form a{coeff(rng)};
  linear_form b{coeff(rng)};
  for (int i = 0; i < 8; ++i) {
    a.add_term(static_cast<source_id>(pick(rng)), coeff(rng));
    b.add_term(static_cast<source_id>(pick(rng)), coeff(rng));
  }
  const linear_form s = a + b;
  EXPECT_NEAR(s.variance(space),
              a.variance(space) + b.variance(space) +
                  2.0 * covariance(a, b, space),
              1e-9);
  const linear_form d = a - b;
  EXPECT_NEAR(d.variance(space),
              a.variance(space) + b.variance(space) -
                  2.0 * covariance(a, b, space),
              1e-9);
  EXPECT_NEAR(sigma_of_difference(a, b, space), d.stddev(space), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, LinearFormAlgebra, ::testing::Range(0, 25));

}  // namespace
}  // namespace vabi::stats
