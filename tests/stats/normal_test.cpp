#include "stats/normal.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace vabi::stats {
namespace {

TEST(NormalPdf, PeakAtZero) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_GT(normal_pdf(0.0), normal_pdf(0.1));
  EXPECT_DOUBLE_EQ(normal_pdf(1.5), normal_pdf(-1.5));
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(normal_cdf(6.0), 1.0, 1e-9);
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876e-10, 1e-12);
}

TEST(NormalCdf, Symmetry) {
  for (double x : {0.1, 0.7, 1.3, 2.9, 4.2}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-14) << "x=" << x;
  }
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.05), -1.6448536269514722, 1e-9);
}

TEST(NormalQuantile, RejectsOutOfDomain) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
  EXPECT_THROW(normal_quantile(-0.1), std::domain_error);
}

TEST(NormalExceedance, DegenerateSigmaComparesMeans) {
  EXPECT_DOUBLE_EQ(normal_exceedance(2.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(normal_exceedance(1.0, 0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(normal_exceedance(1.0, 0.0, 1.0), 0.5);
}

TEST(NormalExceedance, MatchesCdf) {
  EXPECT_NEAR(normal_exceedance(3.0, 2.0, 1.0), normal_cdf(1.0), 1e-15);
  EXPECT_NEAR(normal_exceedance(0.0, 1.0, 0.0), 0.5, 1e-15);
}

TEST(NormalPercentile, ShiftsAndScales) {
  EXPECT_NEAR(normal_percentile(10.0, 2.0, 0.5), 10.0, 1e-12);
  EXPECT_NEAR(normal_percentile(10.0, 2.0, 0.975), 10.0 + 2.0 * 1.9599639845,
              1e-6);
  EXPECT_DOUBLE_EQ(normal_percentile(7.0, 0.0, 0.01), 7.0);
}

// Property sweep: Phi is monotone nondecreasing on a fine grid.
class NormalCdfMonotone : public ::testing::TestWithParam<int> {};

TEST_P(NormalCdfMonotone, Monotone) {
  const double x = -8.0 + 0.16 * GetParam();
  EXPECT_LE(normal_cdf(x), normal_cdf(x + 0.16));
}

INSTANTIATE_TEST_SUITE_P(Grid, NormalCdfMonotone, ::testing::Range(0, 100));

}  // namespace
}  // namespace vabi::stats
