// term_pool / term_block mechanics, the linear_form storage model (inline /
// owned / borrowed), and exact-equality property tests of the pooled
// operations against their value-semantics references.
//
// The property tests are the unit-level face of the bit-identity contract:
// for random sparse forms, every pooled_* op must produce a form that
// compares operator== (exact doubles, same term ids) to the historical
// value-semantics expression it replaces -- including the saturated
// tightness cases (t == 0 / t == 1) where the historical blend *dropped* the
// zero-weighted side's term ids via operator*='s clear-on-zero.
#include "stats/term_pool.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "stats/linear_form.hpp"
#include "stats/rng.hpp"
#include "stats/variation_space.hpp"

namespace vabi::stats {
namespace {

TEST(TermPool, AllocateGrowsAndResetKeepsChunks) {
  term_pool pool;
  EXPECT_EQ(pool.capacity(), 0u);
  EXPECT_EQ(pool.allocations(), 0u);

  lf_term* a = pool.allocate(10);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.live_terms(), 10u);
  EXPECT_GE(pool.capacity(), 10u);
  EXPECT_EQ(pool.allocations(), 1u);

  // A second allocation in the same chunk: no new slab.
  lf_term* b = pool.allocate(10);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.live_terms(), 20u);
  // Addresses are stable and disjoint within the epoch.
  EXPECT_GE(b, a + 10);

  const std::size_t cap = pool.capacity();
  pool.reset();
  EXPECT_EQ(pool.live_terms(), 0u);
  EXPECT_EQ(pool.capacity(), cap);  // chunks kept
  EXPECT_EQ(pool.allocations(), 1u);

  // Steady state: the next epoch reuses the chunk, no allocation.
  pool.allocate(20);
  EXPECT_EQ(pool.allocations(), 1u);
}

TEST(TermPool, PeakTracksAcrossEpochsAndStatisticsReset) {
  term_pool pool;
  pool.allocate(100);
  pool.reset();
  pool.allocate(30);
  EXPECT_EQ(pool.peak_terms(), 100u);
  pool.reset_statistics();
  EXPECT_EQ(pool.peak_terms(), 30u);  // rebased to the currently live terms
  EXPECT_EQ(pool.allocations(), 0u);
  pool.allocate(5);
  EXPECT_EQ(pool.peak_terms(), 35u);  // 30 still live + 5
}

TEST(TermPool, TrimReturnsLatestAllocationTail) {
  term_pool pool;
  lf_term* p = pool.allocate(64);
  pool.trim(p, 64, 16);
  EXPECT_EQ(pool.live_terms(), 16u);
  // The freed tail is immediately reusable without a new chunk.
  const std::size_t allocs = pool.allocations();
  lf_term* q = pool.allocate(32);
  EXPECT_EQ(q, p + 16);
  EXPECT_EQ(pool.allocations(), allocs);
}

TEST(TermPool, LargeAllocationGetsOwnChunk) {
  term_pool pool;
  pool.allocate(8);
  lf_term* big = pool.allocate(100'000);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(pool.live_terms(), 100'008u);
  EXPECT_GE(pool.capacity(), 100'008u);
}

TEST(TermBlock, EnsureRecyclesCapacity) {
  term_block block;
  EXPECT_TRUE(block.empty());
  std::size_t allocs = 0;
  lf_term* p = block.ensure(50, &allocs);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(allocs, 1u);
  EXPECT_GE(block.capacity(), 50u);

  // Smaller or equal requests reuse the slab.
  lf_term* q = block.ensure(20, &allocs);
  EXPECT_EQ(q, p);
  EXPECT_EQ(allocs, 1u);

  // Moves transfer ownership, the source becomes empty.
  term_block other = std::move(block);
  EXPECT_TRUE(block.empty());
  EXPECT_GE(other.capacity(), 50u);
}

// -- linear_form storage model ----------------------------------------------

linear_form make_form(double nominal, std::initializer_list<lf_term> terms) {
  linear_form f{nominal};
  for (const auto& t : terms) f.add_term(t.id, t.coeff);
  return f;
}

TEST(LinearFormStorage, SmallFormsAreInline) {
  const std::size_t heap0 = term_heap_allocations();
  linear_form f = make_form(1.0, {{0, 0.1}, {1, 0.2}, {2, 0.3}, {3, 0.4}});
  EXPECT_EQ(f.num_terms(), 4u);
  EXPECT_TRUE(f.owns_terms());
  EXPECT_EQ(term_heap_allocations(), heap0);  // inline_capacity == 4
  // The fifth term spills to owned heap storage.
  f.add_term(4, 0.5);
  EXPECT_EQ(term_heap_allocations(), heap0 + 1);
  EXPECT_TRUE(f.owns_terms());
}

TEST(LinearFormStorage, PooledResultsBorrowAndMaterializeOnMutation) {
  term_pool pool;
  linear_form a = make_form(1.0, {{0, 1.0}, {2, 2.0}, {4, 3.0}});
  linear_form b = make_form(2.0, {{1, 5.0}, {2, -2.0}, {6, 1.0}});
  linear_form sum = pooled_add(a, b, pool);  // 5 terms > inline => borrowed
  ASSERT_EQ(sum.num_terms(), 5u);
  EXPECT_FALSE(sum.owns_terms());
  EXPECT_EQ(sum.coefficient(2), 0.0);  // exact cancellation term is KEPT

  // Copies of a borrowed form are shallow (same span).
  linear_form copy = sum;
  EXPECT_FALSE(copy.owns_terms());
  EXPECT_EQ(copy.terms().data(), sum.terms().data());

  // Mutation materializes; the original borrow is untouched.
  copy += b;
  EXPECT_TRUE(copy.owns_terms());
  EXPECT_FALSE(sum.owns_terms());

  // own_terms() detaches from the pool before the epoch ends.
  sum.own_terms();
  EXPECT_TRUE(sum.owns_terms());
  const linear_form reference = sum;
  pool.reset();
  EXPECT_EQ(sum, reference);
}

// -- pooled vs value-semantics property tests -------------------------------

struct random_form_source {
  std::mt19937_64 rng{12345};
  std::uniform_int_distribution<int> num_terms{0, 12};
  std::uniform_int_distribution<source_id> id{0, 31};
  std::uniform_real_distribution<double> coeff{-2.0, 2.0};
  std::uniform_real_distribution<double> mean{-50.0, 50.0};

  linear_form next() {
    linear_form f{mean(rng)};
    const int n = num_terms(rng);
    for (int i = 0; i < n; ++i) f.add_term(id(rng), coeff(rng));
    return f;
  }
};

TEST(PooledOpsProperty, ExactlyMatchValueSemantics) {
  variation_space space;
  for (int i = 0; i < 32; ++i) {
    space.add_source(source_kind::random_device, 0.5 + 0.1 * i);
  }
  random_form_source forms;
  term_pool pool;
  std::uniform_real_distribution<double> scale(-3.0, 3.0);

  for (int iter = 0; iter < 2000; ++iter) {
    pool.reset();
    const linear_form a = forms.next();
    const linear_form b = forms.next();
    const double s = scale(forms.rng);

    {
      linear_form ref = a;
      ref += b;
      EXPECT_EQ(pooled_add(a, b, pool), ref);
    }
    {
      linear_form ref = a;
      ref -= b;
      EXPECT_EQ(pooled_sub(a, b, pool), ref);
    }
    {
      linear_form ref = a;
      ref -= s * b;
      EXPECT_EQ(pooled_sub_scaled(a, s, b, pool), ref);
    }
    {
      linear_form ref = a;
      ref += s * b;
      EXPECT_EQ(pooled_add_scaled(a, s, b, pool), ref);
    }
    {
      const linear_form ref = statistical_min(a, b, space);
      EXPECT_EQ(statistical_min(a, b, space, pool), ref);
    }
    {
      const linear_form ref = statistical_max(a, b, space);
      EXPECT_EQ(statistical_max(a, b, space, pool), ref);
    }
  }
}

TEST(PooledOpsProperty, SaturatedTightnessDropsZeroWeightedSide) {
  // Means ~1e5 sigmas apart saturate t = Phi(z) to exactly 1.0: the
  // historical blend t*a + (1-t)*b cleared b's terms (operator*= on zero).
  // The pooled blend must drop those ids too, not keep zero-coefficient
  // terms -- 4P pruning's identical-form tie convention compares term sets.
  variation_space space;
  for (int i = 0; i < 8; ++i) {
    space.add_source(source_kind::random_device, 1.0);
  }
  const linear_form a = make_form(0.0, {{0, 1e-3}, {1, 2e-3}});
  const linear_form b = make_form(1e6, {{2, 5.0}, {3, 1.0}, {4, 2.0}});

  term_pool pool;
  const linear_form ref = statistical_min(a, b, space);    // == a exactly
  const linear_form pooled = statistical_min(a, b, space, pool);
  EXPECT_EQ(pooled, ref);
  EXPECT_EQ(pooled.num_terms(), a.num_terms());  // b's ids are gone

  const linear_form ref_max = statistical_max(a, b, space);  // == b
  const linear_form pooled_max = statistical_max(a, b, space, pool);
  EXPECT_EQ(pooled_max, ref_max);
  EXPECT_EQ(pooled_max.num_terms(), b.num_terms());

  // Zero scale in the fused update is a terms no-op, as `-= 0.0 * b` was.
  const linear_form sub0 = pooled_sub_scaled(a, 0.0, b, pool);
  linear_form ref_sub0 = a;
  ref_sub0 -= 0.0 * b;
  EXPECT_EQ(sub0, ref_sub0);
  EXPECT_EQ(sub0.num_terms(), a.num_terms());
}

TEST(PooledOpsProperty, SteadyStateAllocatesNothing) {
  variation_space space;
  for (int i = 0; i < 32; ++i) {
    space.add_source(source_kind::random_device, 1.0);
  }
  random_form_source forms;
  term_pool pool;
  // Warm up the pool's chunks.
  for (int iter = 0; iter < 64; ++iter) {
    pool.reset();
    statistical_min(forms.next(), forms.next(), space, pool);
  }
  const std::size_t allocs = pool.allocations();
  for (int iter = 0; iter < 512; ++iter) {
    pool.reset();
    const linear_form a = forms.next();
    const linear_form b = forms.next();
    statistical_min(a, b, space, pool);
    pooled_add(a, b, pool);
    pooled_sub_scaled(a, 1.5, b, pool);
  }
  EXPECT_EQ(pool.allocations(), allocs);
}

}  // namespace
}  // namespace vabi::stats
