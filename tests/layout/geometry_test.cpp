#include "layout/geometry.hpp"

#include <gtest/gtest.h>

namespace vabi::layout {
namespace {

TEST(Geometry, Distances) {
  const point a{0.0, 0.0};
  const point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(manhattan_distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(manhattan_distance(a, a), 0.0);
}

TEST(Geometry, BboxBasics) {
  const bbox box{{1.0, 2.0}, {5.0, 8.0}};
  EXPECT_DOUBLE_EQ(box.width(), 4.0);
  EXPECT_DOUBLE_EQ(box.height(), 6.0);
  EXPECT_DOUBLE_EQ(box.area(), 24.0);
  EXPECT_TRUE(box.contains({3.0, 5.0}));
  EXPECT_TRUE(box.contains({1.0, 2.0}));  // boundary
  EXPECT_FALSE(box.contains({0.0, 5.0}));
  EXPECT_EQ(box.center(), (point{3.0, 5.0}));
}

TEST(Geometry, BboxClamp) {
  const bbox box{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_EQ(box.clamp({-5.0, 5.0}), (point{0.0, 5.0}));
  EXPECT_EQ(box.clamp({15.0, 12.0}), (point{10.0, 10.0}));
  EXPECT_EQ(box.clamp({3.0, 4.0}), (point{3.0, 4.0}));
}

TEST(Geometry, BboxExpand) {
  bbox box{{1.0, 1.0}, {1.0, 1.0}};
  box.expand({3.0, 0.0});
  box.expand({-1.0, 2.0});
  EXPECT_EQ(box.lo, (point{-1.0, 0.0}));
  EXPECT_EQ(box.hi, (point{3.0, 2.0}));
}

TEST(Geometry, SquareDie) {
  const bbox die = square_die(1000.0);
  EXPECT_DOUBLE_EQ(die.width(), 1000.0);
  EXPECT_DOUBLE_EQ(die.height(), 1000.0);
  EXPECT_EQ(die.lo, (point{0.0, 0.0}));
}

}  // namespace
}  // namespace vabi::layout
