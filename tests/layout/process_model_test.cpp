#include "layout/process_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace vabi::layout {
namespace {

process_model_config make_config(variation_mode mode) {
  process_model_config c;
  c.mode = mode;
  return c;
}

TEST(VariationMode, Names) {
  EXPECT_STREQ(to_string(nom_mode()), "NOM");
  EXPECT_STREQ(to_string(d2d_mode()), "D2D");
  EXPECT_STREQ(to_string(wid_mode()), "WID");
  EXPECT_STREQ(to_string(variation_mode{true, false, false}), "custom");
}

TEST(ProcessModel, NomIsDeterministic) {
  process_model m{square_die(4000.0), make_config(nom_mode())};
  EXPECT_TRUE(m.is_deterministic());
  const auto dv = m.characterize({1000.0, 1000.0}, 0.02, 30.0);
  EXPECT_TRUE(dv.cap.is_deterministic());
  EXPECT_TRUE(dv.delay.is_deterministic());
  EXPECT_FALSE(dv.random_source.has_value());
  EXPECT_DOUBLE_EQ(dv.cap.mean(), 0.02);
  EXPECT_DOUBLE_EQ(dv.delay.mean(), 30.0);
}

TEST(ProcessModel, D2dHasRandomAndInterDieOnly) {
  process_model m{square_die(4000.0), make_config(d2d_mode())};
  const auto dv = m.characterize({1000.0, 1000.0}, 0.02, 30.0);
  ASSERT_TRUE(dv.random_source.has_value());
  // 5% random + 5% inter-die, no spatial: sigma = nominal*sqrt(2)*0.05.
  EXPECT_NEAR(dv.delay.stddev(m.space()), 30.0 * 0.05 * std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(dv.cap.stddev(m.space()), 0.02 * 0.05 * std::sqrt(2.0), 1e-12);
}

TEST(ProcessModel, WidAddsSpatialBudget) {
  process_model m{square_die(4000.0), make_config(wid_mode())};
  const auto dv = m.characterize({2000.0, 2000.0}, 0.02, 30.0);
  // Homogeneous spatial adds another 5%: sigma = nominal*0.05*sqrt(3).
  EXPECT_NEAR(dv.delay.stddev(m.space()), 30.0 * 0.05 * std::sqrt(3.0), 1e-9);
}

TEST(ProcessModel, CapAndDelayOfOneDeviceAreFullyCorrelated) {
  process_model m{square_die(4000.0), make_config(wid_mode())};
  const auto dv = m.characterize({1500.0, 2500.0}, 0.02, 30.0);
  // Same sources with proportional coefficients -> correlation 1.
  EXPECT_NEAR(stats::correlation(dv.cap, dv.delay, m.space()), 1.0, 1e-12);
}

TEST(ProcessModel, DistinctDevicesGetDistinctRandomSources) {
  process_model m{square_die(4000.0), make_config(d2d_mode())};
  const auto a = m.characterize({100.0, 100.0}, 0.02, 30.0);
  const auto b = m.characterize({100.0, 100.0}, 0.02, 30.0);
  ASSERT_TRUE(a.random_source.has_value());
  ASSERT_TRUE(b.random_source.has_value());
  EXPECT_NE(*a.random_source, *b.random_source);
}

TEST(ProcessModel, InterDieCorrelatesAllDevices) {
  process_model_config c = make_config({false, true, false});
  process_model m{square_die(4000.0), c};
  const auto a = m.characterize({100.0, 100.0}, 0.02, 30.0);
  const auto b = m.characterize({3900.0, 3900.0}, 0.02, 30.0);
  // Only the shared global G: delays perfectly correlated.
  EXPECT_NEAR(stats::correlation(a.delay, b.delay, m.space()), 1.0, 1e-12);
}

TEST(ProcessModel, SpatialCorrelationDecaysWithDistance) {
  process_model_config c = make_config({false, false, true});
  process_model m{square_die(10000.0), c};
  const auto a = m.characterize({5000.0, 5000.0}, 0.02, 30.0);
  const auto near = m.characterize({5300.0, 5000.0}, 0.02, 30.0);
  const auto far = m.characterize({9800.0, 5000.0}, 0.02, 30.0);
  const double rho_near = stats::correlation(a.delay, near.delay, m.space());
  const double rho_far = stats::correlation(a.delay, far.delay, m.space());
  EXPECT_GT(rho_near, 0.5);
  EXPECT_LT(rho_far, 0.05);
}

TEST(ProcessModel, HeterogeneousProfileAffectsSigma) {
  process_model_config c = make_config(wid_mode());
  c.spatial.profile = spatial_profile::heterogeneous;
  process_model m{square_die(4000.0), c};
  const auto sw = m.characterize({200.0, 200.0}, 0.02, 30.0);
  const auto ne = m.characterize({3800.0, 3800.0}, 0.02, 30.0);
  EXPECT_LT(sw.delay.stddev(m.space()), ne.delay.stddev(m.space()));
}

TEST(ProcessModel, ZeroBudgetAddsNoTerms) {
  process_model_config c = make_config(wid_mode());
  c.budgets = {{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
  process_model m{square_die(4000.0), c};
  const auto dv = m.characterize({1000.0, 1000.0}, 0.02, 30.0);
  EXPECT_TRUE(dv.cap.is_deterministic());
  EXPECT_TRUE(dv.delay.is_deterministic());
}

}  // namespace
}  // namespace vabi::layout
