#include "layout/spatial_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/linear_form.hpp"
#include "stats/monte_carlo.hpp"

namespace vabi::layout {
namespace {

spatial_model_config default_config(spatial_profile profile =
                                        spatial_profile::homogeneous) {
  spatial_model_config c;
  c.cell_size_um = 500.0;
  c.range_um = 2000.0;
  c.profile = profile;
  return c;
}

TEST(SpatialModel, RegistersOneSourcePerCell) {
  stats::variation_space space;
  spatial_model m{square_die(2000.0), default_config(), space};
  EXPECT_EQ(space.size(), m.grid().num_cells());
  EXPECT_EQ(space.count(stats::source_kind::spatial), m.grid().num_cells());
}

TEST(SpatialModel, WeightsAreNormalized) {
  stats::variation_space space;
  spatial_model m{square_die(6000.0), default_config(), space};
  for (const point p : {point{100.0, 100.0}, point{3000.0, 3000.0},
                        point{5900.0, 400.0}}) {
    const auto w = m.normalized_weights(p);
    ASSERT_FALSE(w.empty());
    double sum_sq = 0.0;
    for (const auto& t : w) sum_sq += t.coeff * t.coeff;
    EXPECT_NEAR(sum_sq, 1.0, 1e-12);
  }
}

TEST(SpatialModel, NearbyCellDominatesWeights) {
  stats::variation_space space;
  spatial_model m{square_die(6000.0), default_config(), space};
  const point p{3250.0, 3250.0};  // a cell center
  const auto w = m.normalized_weights(p);
  const auto own = m.source_of(m.grid().cell_of(p));
  double own_w = 0.0;
  double max_other = 0.0;
  for (const auto& t : w) {
    if (t.id == own) {
      own_w = t.coeff;
    } else {
      max_other = std::max(max_other, t.coeff);
    }
  }
  EXPECT_GT(own_w, max_other);
}

TEST(SpatialModel, CorrelationDecaysWithDistance) {
  stats::variation_space space;
  spatial_model m{square_die(10000.0), default_config(), space};
  const point a{5000.0, 5000.0};
  const double c0 = m.location_correlation(a, a);
  const double c1 = m.location_correlation(a, {5400.0, 5000.0});
  const double c2 = m.location_correlation(a, {6600.0, 5000.0});
  const double c3 = m.location_correlation(a, {9500.0, 5000.0});
  EXPECT_NEAR(c0, 1.0, 1e-12);
  EXPECT_GT(c1, c2);
  EXPECT_GT(c2, c3);
  // Beyond the taper distance (paper: ~2 mm) the correlation is negligible --
  // the Fig. 4 "B1 and B5 share no regions" picture.
  EXPECT_LT(c3, 0.05);
}

TEST(SpatialModel, AddSpatialTermsGivesBudgetSigma) {
  stats::variation_space space;
  spatial_model m{square_die(4000.0), default_config(), space};
  stats::linear_form f{10.0};
  m.add_spatial_terms(f, {2000.0, 2000.0}, 0.5);
  EXPECT_NEAR(f.stddev(space), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(f.mean(), 10.0);
}

TEST(SpatialModel, HomogeneousProfileIsFlat) {
  stats::variation_space space;
  spatial_model m{square_die(4000.0), default_config(), space};
  EXPECT_DOUBLE_EQ(m.profile_factor({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(m.profile_factor({4000.0, 4000.0}), 1.0);
}

TEST(SpatialModel, HeterogeneousProfileRampsSwToNe) {
  stats::variation_space space;
  spatial_model m{square_die(4000.0),
                  default_config(spatial_profile::heterogeneous), space};
  const double sw = m.profile_factor({0.0, 0.0});
  const double mid = m.profile_factor({2000.0, 2000.0});
  const double ne = m.profile_factor({4000.0, 4000.0});
  EXPECT_DOUBLE_EQ(sw, 0.0);
  EXPECT_DOUBLE_EQ(mid, 1.0);
  EXPECT_DOUBLE_EQ(ne, 2.0);
  // Off-diagonal points interpolate.
  EXPECT_GT(m.profile_factor({4000.0, 0.0}), sw);
  EXPECT_LT(m.profile_factor({4000.0, 0.0}), ne);
}

TEST(SpatialModel, HeterogeneousSigmaGrowsAcrossDie) {
  stats::variation_space space;
  spatial_model m{square_die(4000.0),
                  default_config(spatial_profile::heterogeneous), space};
  stats::linear_form sw{0.0};
  stats::linear_form ne{0.0};
  m.add_spatial_terms(sw, {500.0, 500.0}, 1.0);
  m.add_spatial_terms(ne, {3500.0, 3500.0}, 1.0);
  EXPECT_LT(sw.stddev(space), ne.stddev(space));
}

TEST(SpatialModel, EmpiricalCorrelationMatchesModel) {
  // Monte-Carlo the spatial field at two locations and compare the sample
  // correlation with location_correlation's closed form.
  stats::variation_space space;
  spatial_model m{square_die(6000.0), default_config(), space};
  const point a{2000.0, 3000.0};
  const point b{2800.0, 3200.0};
  stats::linear_form fa{0.0};
  stats::linear_form fb{0.0};
  m.add_spatial_terms(fa, a, 1.0);
  m.add_spatial_terms(fb, b, 1.0);
  const double model_rho = m.location_correlation(a, b);
  EXPECT_NEAR(stats::correlation(fa, fb, space), model_rho, 1e-12);

  stats::monte_carlo_sampler sampler{space, 17};
  std::vector<double> sample;
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sampler.draw(sample);
    const double va = fa.evaluate(sample);
    const double vb = fb.evaluate(sample);
    sab += va * vb;
    saa += va * va;
    sbb += vb * vb;
  }
  EXPECT_NEAR(sab / std::sqrt(saa * sbb), model_rho, 0.03);
}

TEST(SpatialModel, RejectsBadRange) {
  stats::variation_space space;
  spatial_model_config c = default_config();
  c.range_um = 0.0;
  EXPECT_THROW(spatial_model(square_die(1000.0), c, space),
               std::invalid_argument);
}

TEST(SpatialModel, ProfileToString) {
  EXPECT_STREQ(to_string(spatial_profile::homogeneous), "homogeneous");
  EXPECT_STREQ(to_string(spatial_profile::heterogeneous), "heterogeneous");
}

}  // namespace
}  // namespace vabi::layout
