#include "layout/grid.hpp"

#include <gtest/gtest.h>

namespace vabi::layout {
namespace {

TEST(DieGrid, DimensionsRoundUp) {
  die_grid g{square_die(1200.0), 500.0};
  EXPECT_EQ(g.cols(), 3u);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.num_cells(), 9u);
}

TEST(DieGrid, RejectsDegenerateInput) {
  EXPECT_THROW(die_grid(square_die(1000.0), 0.0), std::invalid_argument);
  EXPECT_THROW(die_grid(square_die(0.0), 100.0), std::invalid_argument);
}

TEST(DieGrid, CellOfMapsCorrectly) {
  die_grid g{square_die(1000.0), 500.0};  // 2x2
  EXPECT_EQ(g.cell_of({100.0, 100.0}), 0u);
  EXPECT_EQ(g.cell_of({600.0, 100.0}), 1u);
  EXPECT_EQ(g.cell_of({100.0, 600.0}), 2u);
  EXPECT_EQ(g.cell_of({600.0, 600.0}), 3u);
}

TEST(DieGrid, ClampsOutOfDiePoints) {
  die_grid g{square_die(1000.0), 500.0};
  EXPECT_EQ(g.cell_of({-50.0, -50.0}), 0u);
  EXPECT_EQ(g.cell_of({2000.0, 2000.0}), 3u);
  // The die boundary itself lands in the last cell, not out of range.
  EXPECT_EQ(g.cell_of({1000.0, 1000.0}), 3u);
}

TEST(DieGrid, CellCenters) {
  die_grid g{square_die(1000.0), 500.0};
  EXPECT_EQ(g.cell_center(0), (point{250.0, 250.0}));
  EXPECT_EQ(g.cell_center(3), (point{750.0, 750.0}));
}

TEST(DieGrid, CellOfCenterRoundTrips) {
  die_grid g{square_die(3300.0), 500.0};
  for (cell_index c = 0; c < g.num_cells(); ++c) {
    EXPECT_EQ(g.cell_of(g.cell_center(c)), c);
  }
}

TEST(DieGrid, CellsWithinRadius) {
  die_grid g{square_die(2500.0), 500.0};  // 5x5
  // Radius reaching only the containing cell's center.
  const auto near = g.cells_within({1250.0, 1250.0}, 10.0);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], g.cell_of({1250.0, 1250.0}));
  // Radius covering everything.
  const auto all = g.cells_within({1250.0, 1250.0}, 5000.0);
  EXPECT_EQ(all.size(), g.num_cells());
  // Negative radius: empty.
  EXPECT_TRUE(g.cells_within({1250.0, 1250.0}, -1.0).empty());
}

TEST(DieGrid, CellsWithinIsSortedAndUnique) {
  die_grid g{square_die(4000.0), 500.0};
  const auto cells = g.cells_within({1700.0, 2200.0}, 1200.0);
  for (std::size_t i = 1; i < cells.size(); ++i) {
    EXPECT_LT(cells[i - 1], cells[i]);
  }
}

}  // namespace
}  // namespace vabi::layout
