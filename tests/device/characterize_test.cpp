#include "device/characterize.hpp"

#include <gtest/gtest.h>

#include "timing/buffer_library.hpp"

namespace vabi::device {
namespace {

transistor_model make_model() {
  return transistor_model{transistor_model_config{},
                          timing::standard_library()[0]};
}

TEST(Characterize, FitInterceptNearNominal) {
  const auto m = make_model();
  characterization_config c;
  c.samples = 4000;
  const auto r = characterize_buffer(m, c);
  EXPECT_NEAR(r.cap_nominal_pf, m.reference().cap_pf,
              0.02 * m.reference().cap_pf);
  EXPECT_NEAR(r.delay_nominal_ps, m.reference().delay_ps,
              0.03 * m.reference().delay_ps);
}

TEST(Characterize, FirstOrderFitIsGoodForSmallVariation) {
  // Fig. 3's claim: for small parametric variation the linear fit (and hence
  // the normal approximation) is close to the true nonlinear distribution.
  const auto m = make_model();
  characterization_config c;
  c.samples = 8000;
  c.leff_sigma_frac = 0.10;  // the paper's setting
  const auto r = characterize_buffer(m, c);
  EXPECT_GT(r.delay_fit.r_squared, 0.98);
  EXPECT_LT(r.delay_ks_to_fitted_normal, 0.05);
  // Cap is exactly linear in leff in our model: nearly perfect fit.
  EXPECT_GT(r.cap_fit.r_squared, 0.999);
}

TEST(Characterize, SigmaScalesWithParameterSpread) {
  const auto m = make_model();
  characterization_config narrow;
  narrow.samples = 3000;
  narrow.leff_sigma_frac = 0.05;
  characterization_config wide = narrow;
  wide.leff_sigma_frac = 0.10;
  const auto rn = characterize_buffer(m, narrow);
  const auto rw = characterize_buffer(m, wide);
  EXPECT_NEAR(rw.delay_sigma_ps / rn.delay_sigma_ps, 2.0, 0.25);
}

TEST(Characterize, DelaySensitivityToLeffIsPositive) {
  const auto m = make_model();
  characterization_config c;
  c.samples = 3000;
  const auto r = characterize_buffer(m, c);
  EXPECT_GT(r.delay_fit.coeffs[0], 0.0);  // longer channel -> slower
  EXPECT_GT(r.cap_fit.coeffs[0], 0.0);    // longer channel -> more cap
}

TEST(Characterize, MultiParameterFit) {
  const auto m = make_model();
  characterization_config c;
  c.samples = 6000;
  c.leff_sigma_frac = 0.08;
  c.tox_sigma_frac = 0.04;
  c.ndop_sigma_frac = 0.05;
  const auto r = characterize_buffer(m, c);
  EXPECT_GT(r.delay_fit.r_squared, 0.95);
  // All three parameters must register a nonzero delay sensitivity.
  for (int j = 0; j < 3; ++j) {
    EXPECT_NE(r.delay_fit.coeffs[j], 0.0) << "param " << j;
  }
}

TEST(Characterize, DeterministicInSeed) {
  const auto m = make_model();
  characterization_config c;
  c.samples = 1000;
  const auto a = characterize_buffer(m, c);
  const auto b = characterize_buffer(m, c);
  EXPECT_DOUBLE_EQ(a.delay_nominal_ps, b.delay_nominal_ps);
  EXPECT_DOUBLE_EQ(a.delay_sigma_ps, b.delay_sigma_ps);
}

TEST(Characterize, RejectsTooFewSamples) {
  const auto m = make_model();
  characterization_config c;
  c.samples = 4;
  EXPECT_THROW(characterize_buffer(m, c), std::invalid_argument);
}

}  // namespace
}  // namespace vabi::device
