#include "device/transistor_model.hpp"

#include <gtest/gtest.h>

#include "timing/buffer_library.hpp"

namespace vabi::device {
namespace {

transistor_model make_model() {
  return transistor_model{transistor_model_config{},
                          timing::standard_library()[0]};
}

TEST(TransistorModel, ReproducesReferenceAtNominal) {
  const auto m = make_model();
  const auto d = m.extract(m.config().nominal, 1.0);
  EXPECT_NEAR(d.cap_pf, m.reference().cap_pf, 1e-12);
  EXPECT_NEAR(d.delay_ps, m.reference().delay_ps, 1e-12);
  EXPECT_NEAR(d.res_ohm, m.reference().res_ohm, 1e-12);
}

TEST(TransistorModel, SizeScalesCapAndResistance) {
  const auto m = make_model();
  const auto d1 = m.extract(m.config().nominal, 1.0);
  const auto d2 = m.extract(m.config().nominal, 2.0);
  EXPECT_NEAR(d2.cap_pf, 2.0 * d1.cap_pf, 1e-12);
  EXPECT_NEAR(d2.res_ohm, 0.5 * d1.res_ohm, 1e-12);
  // Intrinsic delay is size-independent (R down, C up).
  EXPECT_NEAR(d2.delay_ps, d1.delay_ps, 1e-12);
}

TEST(TransistorModel, LongerChannelSlowerDevice) {
  const auto m = make_model();
  process_point p = m.config().nominal;
  p.leff_nm *= 1.1;
  const auto d = m.extract(p);
  const auto n = m.extract(m.config().nominal);
  EXPECT_GT(d.delay_ps, n.delay_ps);
  EXPECT_GT(d.cap_pf, n.cap_pf);  // more gate area
  EXPECT_GT(d.res_ohm, n.res_ohm);  // less drive
}

TEST(TransistorModel, ThinnerOxideStrongerDevice) {
  const auto m = make_model();
  process_point p = m.config().nominal;
  p.tox_nm *= 0.9;
  const auto d = m.extract(p);
  const auto n = m.extract(m.config().nominal);
  EXPECT_LT(d.res_ohm, n.res_ohm);
  EXPECT_GT(d.cap_pf, n.cap_pf);
}

TEST(TransistorModel, HigherDopingRaisesVthAndDelay) {
  const auto m = make_model();
  process_point hi = m.config().nominal;
  hi.ndop_rel *= 1.2;
  EXPECT_GT(m.threshold_voltage(hi),
            m.threshold_voltage(m.config().nominal));
  EXPECT_GT(m.extract(hi).delay_ps, m.extract(m.config().nominal).delay_ps);
}

TEST(TransistorModel, ShortChannelLowersVth) {
  const auto m = make_model();
  process_point p = m.config().nominal;
  p.leff_nm *= 0.85;
  EXPECT_LT(m.threshold_voltage(p), m.threshold_voltage(m.config().nominal));
}

TEST(TransistorModel, ResponseIsNonlinearInLeff) {
  // Secant slopes on the two sides of nominal must differ: this is what the
  // first-order fit of Fig. 3 approximates.
  const auto m = make_model();
  process_point lo = m.config().nominal;
  process_point hi = m.config().nominal;
  lo.leff_nm *= 0.8;
  hi.leff_nm *= 1.2;
  const double nominal = m.extract(m.config().nominal).delay_ps;
  const double slope_lo = nominal - m.extract(lo).delay_ps;
  const double slope_hi = m.extract(hi).delay_ps - nominal;
  EXPECT_GT(std::abs(slope_hi - slope_lo), 1e-3 * std::abs(slope_hi));
}

TEST(TransistorModel, RejectsBadInput) {
  const auto m = make_model();
  EXPECT_THROW(m.extract(m.config().nominal, 0.0), std::invalid_argument);
  process_point dead = m.config().nominal;
  dead.ndop_rel = 1e6;  // Vth above Vdd
  EXPECT_THROW(m.extract(dead), std::domain_error);
}

}  // namespace
}  // namespace vabi::device
