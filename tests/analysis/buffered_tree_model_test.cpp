#include "analysis/buffered_tree_model.hpp"

#include <gtest/gtest.h>

#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"

namespace vabi::analysis {
namespace {

layout::process_model make_model(const tree::routing_tree& t,
                                 layout::variation_mode mode) {
  layout::process_model_config c;
  c.mode = mode;
  layout::bbox die = t.bounding_box();
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  return layout::process_model{die, c};
}

struct fixture {
  tree::routing_tree t;
  timing::wire_model wire;
  timing::buffer_library lib = timing::standard_library();
  timing::buffer_assignment assignment;

  fixture() : t(make_tree()) {
    core::det_options o{wire, lib, 150.0};
    assignment = core::run_van_ginneken(t, o).assignment;
  }

  static tree::routing_tree make_tree() {
    tree::random_tree_options to;
    to.num_sinks = 50;
    to.die_side_um = 7000.0;
    to.seed = 14;
    return tree::make_random_tree(to);
  }
};

TEST(BufferedTreeModel, NominalModeReproducesElmoreExactly) {
  fixture f;
  auto model = make_model(f.t, layout::nom_mode());
  buffered_tree_model btm{f.t, f.wire, f.lib, f.assignment, model, 150.0};
  const auto eval = timing::evaluate_buffered_tree(f.t, f.wire, f.lib,
                                                   f.assignment, 150.0);
  EXPECT_TRUE(btm.root_rat().is_deterministic());
  EXPECT_NEAR(btm.root_rat().mean(), eval.root_rat_ps, 1e-6);
  EXPECT_EQ(btm.num_buffers(), f.assignment.count());
}

TEST(BufferedTreeModel, WidModeGivesPositiveSigma) {
  fixture f;
  auto model = make_model(f.t, layout::wid_mode());
  buffered_tree_model btm{f.t, f.wire, f.lib, f.assignment, model, 150.0};
  EXPECT_GT(btm.root_rat().stddev(model.space()), 0.0);
}

TEST(BufferedTreeModel, SampleEvaluationAtZeroEqualsNominal) {
  fixture f;
  auto model = make_model(f.t, layout::wid_mode());
  buffered_tree_model btm{f.t, f.wire, f.lib, f.assignment, model, 150.0};
  const std::vector<double> zeros(model.space().size(), 0.0);
  const auto eval = timing::evaluate_buffered_tree(f.t, f.wire, f.lib,
                                                   f.assignment, 150.0);
  EXPECT_NEAR(btm.evaluate_sample(zeros), eval.root_rat_ps, 1e-6);
}

TEST(BufferedTreeModel, MoreVariationMeansMoreSigma) {
  fixture f;
  auto d2d = make_model(f.t, layout::d2d_mode());
  auto wid = make_model(f.t, layout::wid_mode());
  buffered_tree_model m1{f.t, f.wire, f.lib, f.assignment, d2d, 150.0};
  buffered_tree_model m2{f.t, f.wire, f.lib, f.assignment, wid, 150.0};
  EXPECT_GT(m2.root_rat().stddev(wid.space()),
            m1.root_rat().stddev(d2d.space()));
}

TEST(BufferedTreeModel, SizedDesignEvaluationConsistent) {
  // A wire-sized design's canonical-form mean must agree with its nominal
  // Elmore evaluation, and MC sampling at zero deviation must match too.
  fixture f;
  core::det_options o{f.wire, f.lib, 150.0, {1.0, 2.0, 4.0}};
  const auto sized = core::run_van_ginneken(f.t, o);
  const timing::wire_menu menu{f.wire, o.wire_width_multipliers};

  auto model = make_model(f.t, layout::wid_mode());
  buffered_tree_model btm{f.t,   menu,  sized.wires, f.lib,
                          sized.assignment, model, 150.0};
  EXPECT_NEAR(btm.root_rat().mean(), sized.root_rat_ps,
              0.02 * std::abs(sized.root_rat_ps) + 5.0);
  const std::vector<double> zeros(model.space().size(), 0.0);
  EXPECT_NEAR(btm.evaluate_sample(zeros), sized.root_rat_ps, 1e-6);
}

TEST(BufferedTreeModel, RejectsMismatchedAssignment) {
  fixture f;
  auto model = make_model(f.t, layout::nom_mode());
  timing::buffer_assignment bad(3);
  EXPECT_THROW(
      buffered_tree_model(f.t, f.wire, f.lib, bad, model, 150.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace vabi::analysis
