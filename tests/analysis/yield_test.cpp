#include "analysis/yield.hpp"

#include <gtest/gtest.h>

#include "stats/normal.hpp"

namespace vabi::analysis {
namespace {

class YieldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = space_.add_source(stats::source_kind::random_device, 1.0);
  }
  stats::variation_space space_;
  stats::source_id x_ = 0;
};

TEST_F(YieldTest, YieldRatIsLowerQuantile) {
  // RAT ~ N(-1000, 100^2): 95%-yield RAT = -1000 - 1.6449*100.
  stats::linear_form rat{-1000.0, {{x_, 100.0}}};
  EXPECT_NEAR(yield_rat(rat, space_, 0.95), -1000.0 - 164.49, 0.1);
  EXPECT_NEAR(yield_rat(rat, space_, 0.5), -1000.0, 1e-9);
  EXPECT_THROW(yield_rat(rat, space_, 0.0), std::domain_error);
  EXPECT_THROW(yield_rat(rat, space_, 1.0), std::domain_error);
}

TEST_F(YieldTest, DeterministicRatYieldRatIsMean) {
  stats::linear_form rat{-500.0};
  EXPECT_DOUBLE_EQ(yield_rat(rat, space_, 0.95), -500.0);
}

TEST_F(YieldTest, TimingYieldMonotoneInTarget) {
  stats::linear_form rat{-1000.0, {{x_, 100.0}}};
  const double easy = timing_yield(rat, space_, -1300.0);
  const double hard = timing_yield(rat, space_, -900.0);
  EXPECT_GT(easy, 0.99);
  EXPECT_LT(hard, 0.20);
  EXPECT_NEAR(timing_yield(rat, space_, -1000.0), 0.5, 1e-12);
}

TEST_F(YieldTest, DegenerateTimingYieldIsStep) {
  stats::linear_form rat{-500.0};
  EXPECT_DOUBLE_EQ(timing_yield(rat, space_, -600.0), 1.0);
  EXPECT_DOUBLE_EQ(timing_yield(rat, space_, -400.0), 0.0);
}

TEST_F(YieldTest, EmpiricalVersionsAgreeWithModelOnNormalSamples) {
  stats::linear_form rat{-1000.0, {{x_, 100.0}}};
  std::vector<double> samples;
  // Deterministic normal grid via quantiles (avoids MC noise).
  for (int i = 1; i < 2000; ++i) {
    samples.push_back(-1000.0 +
                      100.0 * stats::normal_quantile(i / 2000.0));
  }
  stats::empirical_distribution dist{std::move(samples)};
  EXPECT_NEAR(yield_rat_empirical(dist, 0.95), yield_rat(rat, space_, 0.95),
              2.0);
  EXPECT_NEAR(timing_yield_empirical(dist, -1100.0),
              timing_yield(rat, space_, -1100.0), 0.01);
  EXPECT_THROW(yield_rat_empirical(dist, 1.0), std::domain_error);
}

TEST(TargetRat, RelaxesNegativeRatByFraction) {
  EXPECT_DOUBLE_EQ(target_rat_from_mean(-2000.0, 0.10), -2200.0);
  EXPECT_DOUBLE_EQ(target_rat_from_mean(-2000.0, 0.0), -2000.0);
  // Positive RATs are tightened toward zero consistently (subtract fraction
  // of magnitude).
  EXPECT_DOUBLE_EQ(target_rat_from_mean(1000.0, 0.10), 900.0);
}

}  // namespace
}  // namespace vabi::analysis
