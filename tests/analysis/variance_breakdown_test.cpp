#include "analysis/variance_breakdown.hpp"

#include <gtest/gtest.h>

#include "core/statistical_dp.hpp"
#include "tree/generators.hpp"

namespace vabi::analysis {
namespace {

TEST(VarianceBreakdown, SplitsExactlyByClass) {
  stats::variation_space space;
  const auto x = space.add_source(stats::source_kind::random_device, 2.0);
  const auto y = space.add_source(stats::source_kind::spatial, 1.0);
  const auto g = space.add_source(stats::source_kind::inter_die, 0.5);
  stats::linear_form f{10.0, {{x, 1.0}, {y, 3.0}, {g, 4.0}}};
  const auto b = decompose_variance(f, space);
  EXPECT_DOUBLE_EQ(b.random_device, 4.0);   // 1^2 * 2^2
  EXPECT_DOUBLE_EQ(b.spatial, 9.0);         // 3^2 * 1^2
  EXPECT_DOUBLE_EQ(b.inter_die, 4.0);       // 4^2 * 0.5^2
  EXPECT_DOUBLE_EQ(b.parametric, 0.0);
  EXPECT_DOUBLE_EQ(b.total(), f.variance(space));
  EXPECT_NEAR(b.fraction(b.spatial), 9.0 / 17.0, 1e-12);
}

TEST(VarianceBreakdown, DeterministicFormIsAllZero) {
  stats::variation_space space;
  const auto b = decompose_variance(stats::linear_form{5.0}, space);
  EXPECT_DOUBLE_EQ(b.total(), 0.0);
  EXPECT_DOUBLE_EQ(b.fraction(b.spatial), 0.0);
}

TEST(VarianceBreakdown, D2dDesignHasNoSpatialVariance) {
  tree::random_tree_options to;
  to.num_sinks = 40;
  to.die_side_um = 8000.0;
  to.seed = 33;
  const auto t = tree::make_random_tree(to);
  layout::process_model_config c;
  c.mode = layout::d2d_mode();
  layout::process_model model{layout::square_die(to.die_side_um), c};
  core::stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  const auto r = core::run_statistical_insertion(t, model, o);
  ASSERT_TRUE(r.ok());
  const auto b = decompose_variance(r.root_rat, model.space());
  EXPECT_DOUBLE_EQ(b.spatial, 0.0);
  EXPECT_GT(b.random_device, 0.0);
  EXPECT_GT(b.inter_die, 0.0);
  EXPECT_NEAR(b.total(), r.root_rat.variance(model.space()), 1e-9);
}

TEST(VarianceBreakdown, InterDieDominatesDeepBufferChains) {
  // Many buffers in series: their inter-die contributions add linearly
  // (coherently) while random contributions add in quadrature, so inter-die
  // dominates on long chains -- the "variation canceling" observation of
  // Section 5.3.
  tree::chain_options co;
  co.length_um = 16000.0;
  co.segments = 32;
  co.sink_cap_pf = 0.05;
  const auto t = tree::make_chain(co);
  layout::process_model_config c;
  c.mode = layout::d2d_mode();
  layout::process_model model{layout::square_die(16000.0), c};
  core::stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  const auto r = core::run_statistical_insertion(t, model, o);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r.num_buffers, 4u);
  const auto b = decompose_variance(r.root_rat, model.space());
  EXPECT_GT(b.inter_die, b.random_device);
}

}  // namespace
}  // namespace vabi::analysis
