#include "analysis/clock_skew.hpp"

#include <gtest/gtest.h>

#include "core/statistical_dp.hpp"
#include "stats/monte_carlo.hpp"
#include "tree/generators.hpp"

namespace vabi::analysis {
namespace {

layout::process_model make_model(double die_um, layout::variation_mode mode) {
  layout::process_model_config c;
  c.mode = mode;
  return layout::process_model{layout::square_die(die_um), c};
}

struct h_fixture {
  tree::routing_tree net;
  timing::wire_model wire;
  timing::buffer_library lib = timing::standard_library();

  explicit h_fixture(std::size_t levels) : net(make(levels)) {}

  static tree::routing_tree make(std::size_t levels) {
    tree::h_tree_options h;
    h.levels = levels;
    h.die_side_um = 8000.0;
    return tree::make_h_tree(h);
  }

  /// Symmetric buffering: a buffer at every node of a chosen depth.
  timing::buffer_assignment symmetric_buffers(std::size_t depth) const {
    timing::buffer_assignment a(net.num_nodes());
    std::vector<std::size_t> d(net.num_nodes(), 0);
    for (tree::node_id id = 1; id < net.num_nodes(); ++id) {
      d[id] = d[net.node(id).parent] + 1;
      if (d[id] == depth) a.place(id, 0);
    }
    return a;
  }
};

TEST(ClockSkew, SymmetricTreeNominalSkewIsZero) {
  h_fixture f{3};
  auto model = make_model(8000.0, layout::nom_mode());
  const auto s = analyze_clock_skew(f.net, f.wire, f.lib,
                                    f.symmetric_buffers(2), model, 100.0);
  EXPECT_NEAR(s.skew.mean(), 0.0, 1e-9);
  EXPECT_TRUE(s.skew.is_deterministic());
  EXPECT_GT(s.latest_arrival.mean(), 0.0);
}

TEST(ClockSkew, RandomVariationCreatesSkew) {
  h_fixture f{3};
  layout::process_model_config c;
  c.mode = {true, false, false};  // random device variation only
  layout::process_model model{layout::square_die(8000.0), c};
  const auto s = analyze_clock_skew(f.net, f.wire, f.lib,
                                    f.symmetric_buffers(2), model, 100.0);
  // Statistical max of iid arrivals exceeds the mean: positive mean skew.
  EXPECT_GT(s.skew.mean(), 0.0);
}

TEST(ClockSkew, InterDieVariationIsCommonModeForSkew) {
  h_fixture f{3};
  // Inter-die only: every buffer shifts identically, so arrival times move
  // together and the skew of a symmetric tree stays (nearly) zero.
  layout::process_model_config c;
  c.mode = {false, true, false};
  layout::process_model model{layout::square_die(8000.0), c};
  const auto s = analyze_clock_skew(f.net, f.wire, f.lib,
                                    f.symmetric_buffers(2), model, 100.0);
  EXPECT_NEAR(s.skew.mean(), 0.0, 1e-6);
  EXPECT_NEAR(s.skew.stddev(model.space()), 0.0, 1e-9);
}

TEST(ClockSkew, SkewSigmaSmallerThanArrivalSigma) {
  h_fixture f{3};
  auto model = make_model(8000.0, layout::wid_mode());
  const auto s = analyze_clock_skew(f.net, f.wire, f.lib,
                                    f.symmetric_buffers(2), model, 100.0);
  // Shared (inter-die + spatial) variation is common mode: the skew spread
  // must be well below the arrival-time spread.
  EXPECT_LT(s.skew.stddev(model.space()),
            s.latest_arrival.stddev(model.space()));
}

TEST(ClockSkew, AsymmetricBufferingCreatesNominalSkew) {
  h_fixture f{2};
  timing::buffer_assignment a(f.net.num_nodes());
  // Buffer only one first-level arm: its subtree gets extra buffer delay.
  a.place(f.net.node(f.net.root()).children[0], 0);
  auto model = make_model(8000.0, layout::nom_mode());
  const auto s = analyze_clock_skew(f.net, f.wire, f.lib, a, model, 100.0);
  EXPECT_GT(s.skew.mean(), 1.0);
  EXPECT_NE(s.latest_sink, s.earliest_sink);
}

TEST(ClockSkew, MatchesMonteCarloOnSmallTree) {
  h_fixture f{2};
  auto model = make_model(8000.0, layout::wid_mode());
  const auto a = f.symmetric_buffers(1);
  const auto s = analyze_clock_skew(f.net, f.wire, f.lib, a, model, 100.0);

  // MC ground truth: evaluate arrival times per sample through the Elmore
  // engine is involved; instead validate the *latest arrival* form against
  // sampling the per-sink arrival forms directly (they are exact; only the
  // max linearization is approximate).
  // Rebuild per-sink arrival forms by rerunning the analysis with a fresh
  // model is equivalent; here we only check internal consistency:
  EXPECT_GE(s.latest_arrival.mean(), s.earliest_arrival.mean());
  EXPECT_NEAR(s.skew.mean(),
              s.latest_arrival.mean() - s.earliest_arrival.mean(), 1e-9);

  stats::monte_carlo_sampler sampler{model.space(), 5};
  std::vector<double> sample;
  // Max form must dominate min form on (almost) every draw.
  int violations = 0;
  for (int i = 0; i < 500; ++i) {
    sampler.draw(sample);
    if (s.latest_arrival.evaluate(sample) <
        s.earliest_arrival.evaluate(sample) - 1e-9) {
      ++violations;
    }
  }
  EXPECT_LT(violations, 25);  // linearization keeps order w.h.p.
}

TEST(ClockSkew, YieldMonotoneInTarget) {
  h_fixture f{3};
  auto model = make_model(8000.0, layout::wid_mode());
  const auto s = analyze_clock_skew(f.net, f.wire, f.lib,
                                    f.symmetric_buffers(2), model, 100.0);
  const auto& space = model.space();
  const double y_tight = skew_yield(s, space, s.skew.mean() * 0.5);
  const double y_loose = skew_yield(s, space,
                                    s.skew.mean() + 5.0 * s.skew.stddev(space));
  EXPECT_LE(y_tight, y_loose);
  EXPECT_GT(y_loose, 0.99);
}

TEST(ClockSkew, RejectsMismatchedAssignment) {
  h_fixture f{2};
  auto model = make_model(8000.0, layout::nom_mode());
  timing::buffer_assignment bad(2);
  EXPECT_THROW(
      analyze_clock_skew(f.net, f.wire, f.lib, bad, model, 100.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace vabi::analysis
