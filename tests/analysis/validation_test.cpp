// Model-vs-Monte-Carlo validation (the Fig. 6 experiment, in test form) and
// the reporting helpers.
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/monte_carlo_validation.hpp"
#include "analysis/reporting.hpp"
#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"

namespace vabi::analysis {
namespace {

TEST(Validation, ModelPdfMatchesMonteCarlo) {
  tree::random_tree_options to;
  to.num_sinks = 40;
  to.die_side_um = 7000.0;
  to.seed = 23;
  const auto t = tree::make_random_tree(to);
  timing::wire_model wire;
  const auto lib = timing::standard_library();
  core::det_options o{wire, lib, 150.0};
  const auto assignment = core::run_van_ginneken(t, o).assignment;

  layout::process_model_config c;
  c.mode = layout::wid_mode();
  layout::bbox die = t.bounding_box();
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  layout::process_model model{die, c};
  buffered_tree_model design{t, wire, lib, assignment, model, 150.0};

  const auto v = validate_rat_model(design, model, 4000, 77);
  // Fig. 6's claim: the first-order model predicts the MC PDF closely.
  EXPECT_NEAR(v.mc_moments.mean, v.model_mean_ps,
              0.01 * std::abs(v.model_mean_ps));
  ASSERT_GT(v.model_sigma_ps, 0.0);
  EXPECT_NEAR(v.mc_moments.stddev, v.model_sigma_ps, 0.15 * v.model_sigma_ps);
  EXPECT_LT(v.ks_distance, 0.06);
}

TEST(Reporting, TableFormatsAndAligns) {
  text_table t{{"Bench", "RAT"}};
  t.add_row({"p1", "-2611.7"});
  t.add_row({"r5", "-2703.3"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Bench"), std::string::npos);
  EXPECT_NE(s.find("| p1"), std::string::npos);
  EXPECT_NE(s.find("-2703.3"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), std::invalid_argument);
}

TEST(Reporting, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-2673.46, 1), "-2673.5");
  EXPECT_EQ(fmt_percent(0.4216, 1), "42.2%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Reporting, HistogramAndSeriesDoNotChokeOnEdgeCases) {
  std::ostringstream os;
  print_histogram(os, {{0.0, 0.0}, {1.0, 0.0}});  // flat (peak guard)
  print_series(os, "x", "y", {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace vabi::analysis
