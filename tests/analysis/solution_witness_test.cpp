// Independent witness audit: the straight-line re-derivation must reproduce
// the DP's claimed root RAT form bit for bit on genuine results, and must
// catch tampered forms and assignments -- the property that makes it a real
// cross-check rather than a second copy of the same computation.
#include "analysis/solution_witness.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/parallel.hpp"
#include "timing/buffer_library.hpp"
#include "tree/generators.hpp"

namespace vabi::analysis {
namespace {

core::batch_job generated_job(std::size_t sinks,
                              core::pruning_kind rule =
                                  core::pruning_kind::two_param) {
  core::batch_job job;
  tree::random_tree_options g;
  g.num_sinks = sinks;
  job.generate = g;
  job.options.library = timing::standard_library();
  job.options.rule = rule;
  return job;
}

/// Solves one generated job and returns (job, result) for auditing.
core::solve_outcome<core::batch_result> solve(const core::batch_job& job) {
  core::batch_solver::config cfg;
  cfg.num_threads = 1;
  cfg.batch_seed = 5;
  core::batch_solver solver{cfg};
  auto slots = solver.solve_outcomes({job});
  return std::move(slots[0]);
}

TEST(SolutionWitness, ReproducesTwoParamResultBitForBit) {
  const auto job = generated_job(50);
  auto slot = solve(job);
  ASSERT_TRUE(slot.ok()) << slot.error().message();

  const witness_report report = audit_solution(job, *slot);
  ASSERT_TRUE(report.checked) << report.skip_reason;
  EXPECT_TRUE(report.match) << report.mismatch;
  EXPECT_TRUE(report.ok()) << report.mc_detail;
  EXPECT_TRUE(report.mc_checked);
  EXPECT_GT(report.model_sigma_ps, 0.0);
}

TEST(SolutionWitness, ReproducesCornerRuleResult) {
  const auto job = generated_job(40, core::pruning_kind::corner);
  auto slot = solve(job);
  ASSERT_TRUE(slot.ok()) << slot.error().message();
  const witness_report report = audit_solution(job, *slot);
  ASSERT_TRUE(report.checked) << report.skip_reason;
  EXPECT_TRUE(report.ok()) << report.mismatch << report.mc_detail;
}

TEST(SolutionWitness, ReproducesFourParamResult) {
  auto job = generated_job(25, core::pruning_kind::four_param);
  job.options.max_list_size = 200000;
  auto slot = solve(job);
  ASSERT_TRUE(slot.ok()) << slot.error().message();
  const witness_report report = audit_solution(job, *slot);
  ASSERT_TRUE(report.checked) << report.skip_reason;
  EXPECT_TRUE(report.ok()) << report.mismatch << report.mc_detail;
}

TEST(SolutionWitness, ReproducesWireSizedResult) {
  auto job = generated_job(35);
  job.options.wire_width_multipliers = {1.0, 1.4, 2.0};
  auto slot = solve(job);
  ASSERT_TRUE(slot.ok()) << slot.error().message();
  const witness_report report = audit_solution(job, *slot);
  ASSERT_TRUE(report.checked) << report.skip_reason;
  EXPECT_TRUE(report.ok()) << report.mismatch << report.mc_detail;
}

TEST(SolutionWitness, CatchesATamperedCoefficient) {
  const auto job = generated_job(30);
  auto slot = solve(job);
  ASSERT_TRUE(slot.ok());

  // Perturb the claimed form by one ULP-scale nudge of the nominal: the
  // witness must notice, because its comparison is exact.
  core::batch_result tampered = std::move(*slot);
  stats::linear_form forged{
      tampered.result.root_rat.nominal() * (1.0 + 1e-12),
      {tampered.result.root_rat.terms().begin(),
       tampered.result.root_rat.terms().end()}};
  tampered.result.root_rat = std::move(forged);

  const witness_report report = audit_solution(job, tampered);
  ASSERT_TRUE(report.checked) << report.skip_reason;
  EXPECT_FALSE(report.match);
  EXPECT_NE(report.mismatch.find("nominal"), std::string::npos)
      << report.mismatch;
}

TEST(SolutionWitness, CatchesATamperedAssignment) {
  const auto job = generated_job(30);
  auto slot = solve(job);
  ASSERT_TRUE(slot.ok());
  ASSERT_GT(slot->result.num_buffers, 0u);

  // Remove one placed buffer but keep the claimed form: the design no
  // longer produces that form, and the witness re-derivation must diverge.
  core::batch_result tampered = std::move(*slot);
  for (std::size_t id = 0; id < tampered.result.assignment.num_nodes(); ++id) {
    if (tampered.result.assignment.has_buffer(id)) {
      tampered.result.assignment.remove(id);
      break;
    }
  }
  const witness_report report = audit_solution(job, tampered);
  ASSERT_TRUE(report.checked) << report.skip_reason;
  EXPECT_FALSE(report.match);
}

TEST(SolutionWitness, SkipsAbortedResultsWithAReason) {
  const auto job = generated_job(30);
  auto slot = solve(job);
  ASSERT_TRUE(slot.ok());
  core::batch_result aborted = std::move(*slot);
  aborted.result.stats.aborted = true;
  const witness_report report = audit_solution(job, aborted);
  EXPECT_FALSE(report.checked);
  EXPECT_FALSE(report.skip_reason.empty());
  EXPECT_FALSE(report.ok());
}

TEST(SolutionWitness, AuditsJournaledRecordsAfterResume) {
  // End-to-end: journal a batch, resume it, audit every restored slot. This
  // is the satellite contract -- restored records are not exempt from the
  // witness because restore rebuilt their model from the source count.
  std::vector<core::batch_job> jobs(3);
  for (auto& j : jobs) j = generated_job(30);

  const std::string path =
      ::testing::TempDir() + "vabi_witness_resume.vjl";
  std::remove(path.c_str());
  core::batch_solver::config cfg;
  cfg.num_threads = 2;
  cfg.batch_seed = 5;

  core::batch_journal_options jopts;
  jopts.path = path;
  {
    core::batch_solver solver{cfg};
    ASSERT_TRUE(solver.solve_journaled(jobs, jopts).ok());
  }
  jopts.resume = true;
  core::batch_solver solver{cfg};
  auto resumed = solver.solve_journaled(jobs, jopts);
  std::remove(path.c_str());
  ASSERT_TRUE(resumed.ok()) << resumed.error().message();
  ASSERT_EQ(resumed->restored, jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(resumed->slots[i].ok());
    const witness_report report =
        audit_solution(jobs[i], *resumed->slots[i]);
    ASSERT_TRUE(report.checked) << report.skip_reason;
    EXPECT_TRUE(report.ok()) << "restored slot " << i << ": "
                             << report.mismatch << report.mc_detail;
  }
}

}  // namespace
}  // namespace vabi::analysis
