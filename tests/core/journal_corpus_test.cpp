// Corruption corpus for the result journal: every damaged input must either
// recover (torn tails, duplicates) or fail with a typed solve_error -- never
// throw, never return silently wrong records. Mirrors the philosophy of
// tree_io_corpus_test.cpp for the binary journal format.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/parallel.hpp"
#include "testing/fault_injection.hpp"
#include "timing/buffer_library.hpp"

namespace vabi::core {
namespace {

struct temp_journal {
  std::string path;
  explicit temp_journal(const std::string& name)
      : path(::testing::TempDir() + "vabi_corpus_" + name + ".vjl") {
    std::remove(path.c_str());
  }
  ~temp_journal() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
};

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(b.data()),
           static_cast<std::streamsize>(b.size()));
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

journal_record make_record(std::uint64_t index) {
  journal_record rec;
  rec.job_index = index;
  rec.fingerprint = 1000 + index;
  rec.ok = true;
  rec.num_sources = 3;
  rec.result.root_rat =
      stats::linear_form{-100.0 - static_cast<double>(index),
                         {{0, 1.5}, {1, -2.5}}};
  rec.result.assignment = timing::buffer_assignment{3};
  rec.result.wires = timing::wire_assignment{3};
  rec.result.num_buffers = 0;
  return rec;
}

/// magic + header frame + `count` record frames, as raw bytes.
std::vector<std::uint8_t> valid_image(std::size_t count) {
  std::vector<std::uint8_t> image{'V', 'A', 'B', 'I', 'J', 'R', 'N', 'L'};
  journal_header header;
  header.num_jobs = count;
  header.jobs_fingerprint = 7;
  auto frame = journal_detail::encode_header_frame(header);
  image.insert(image.end(), frame.begin(), frame.end());
  for (std::size_t i = 0; i < count; ++i) {
    frame = journal_detail::encode_record_frame(make_record(i));
    image.insert(image.end(), frame.begin(), frame.end());
  }
  return image;
}

TEST(JournalCorpus, ZeroLengthFileIsAnEmptyJournal) {
  temp_journal tj{"zero_length"};
  write_bytes(tj.path, {});
  auto read = read_journal(tj.path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->has_header);
  EXPECT_TRUE(read->records.empty());
}

TEST(JournalCorpus, MagicOnlyFileIsAnEmptyJournal) {
  temp_journal tj{"magic_only"};
  write_bytes(tj.path, {'V', 'A', 'B', 'I', 'J', 'R', 'N', 'L'});
  auto read = read_journal(tj.path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->has_header);
}

TEST(JournalCorpus, WrongMagicIsTypedCorrupt) {
  temp_journal tj{"wrong_magic"};
  auto image = valid_image(2);
  image[3] = 'X';
  write_bytes(tj.path, image);
  auto read = read_journal(tj.path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, solve_code::journal_corrupt);
}

TEST(JournalCorpus, EveryTruncationRecoversOrDropsTheTail) {
  // Chop the file at every possible byte length: each prefix must read back
  // as some valid prefix of the record sequence with the torn tail dropped,
  // never an error, never a record that was not written.
  const auto image = valid_image(3);
  for (std::size_t len = 0; len < image.size(); ++len) {
    temp_journal tj{"truncate_" + std::to_string(len)};
    write_bytes(tj.path,
                std::vector<std::uint8_t>(image.begin(), image.begin() + len));
    auto read = read_journal(tj.path);
    ASSERT_TRUE(read.ok()) << "truncated at " << len << ": "
                           << read.error().message();
    EXPECT_LE(read->records.size(), 3u);
    for (std::size_t k = 0; k < read->records.size(); ++k) {
      EXPECT_EQ(read->records[k].job_index, k) << "truncated at " << len;
    }
  }
}

TEST(JournalCorpus, BitFlipInLastFrameDropsTheTail) {
  auto image = valid_image(3);
  image[image.size() - 5] ^= 0x04;  // inside the last record's payload
  temp_journal tj{"flip_last"};
  write_bytes(tj.path, image);
  auto read = read_journal(tj.path);
  ASSERT_TRUE(read.ok()) << read.error().message();
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_GT(read->dropped_tail_bytes, 0u);
}

TEST(JournalCorpus, BitFlipMidLogIsTypedCorruptNamingTheRecord) {
  // Flip one bit in *every* payload byte position of record 0 in turn; with
  // two intact records after it, each flip must surface as journal_corrupt
  // (frame 1 = record index 0), never as UB or silent acceptance.
  const auto clean = valid_image(3);
  // Find where record 0's frame starts: magic + header frame.
  std::size_t rec0 = 8;
  {
    journal_header header;
    header.num_jobs = 3;
    header.jobs_fingerprint = 7;
    rec0 += journal_detail::encode_header_frame(header).size();
  }
  const std::size_t rec0_size =
      journal_detail::encode_record_frame(make_record(0)).size();
  std::size_t typed = 0;
  for (std::size_t off = rec0 + 8; off < rec0 + rec0_size; off += 7) {
    auto image = clean;
    image[off] ^= 0x01;
    temp_journal tj{"flip_mid_" + std::to_string(off)};
    write_bytes(tj.path, image);
    auto read = read_journal(tj.path);
    ASSERT_FALSE(read.ok()) << "payload flip at " << off << " not detected";
    EXPECT_EQ(read.error().code, solve_code::journal_corrupt);
    EXPECT_NE(read.error().detail.find("record"), std::string::npos)
        << read.error().detail;
    ++typed;
  }
  EXPECT_GT(typed, 5u);
}

TEST(JournalCorpus, CorruptLengthFieldMidLogIsDetected) {
  // Flipping a high bit of a mid-log frame's length field makes the frame
  // claim to extend past intact data; the reader must not walk off.
  auto image = valid_image(3);
  journal_header header;
  header.num_jobs = 3;
  header.jobs_fingerprint = 7;
  const std::size_t rec0 = 8 + journal_detail::encode_header_frame(header).size();
  image[rec0 + 2] ^= 0x40;  // length's third byte: +4 MiB
  temp_journal tj{"bad_len"};
  write_bytes(tj.path, image);
  auto read = read_journal(tj.path);
  // The oversized frame swallows the intact frames after it, so the reader
  // sees a frame running past EOF -- a torn tail -- or a CRC mismatch with
  // nothing after it. Either way: recovered prefix, no fabricated records.
  ASSERT_TRUE(read.ok()) << read.error().message();
  EXPECT_TRUE(read->records.empty());
  EXPECT_GT(read->dropped_tail_bytes, 0u);
}

TEST(JournalCorpus, DuplicatedRecordsKeepTheFirst) {
  std::vector<std::uint8_t> image{'V', 'A', 'B', 'I', 'J', 'R', 'N', 'L'};
  journal_header header;
  header.num_jobs = 2;
  auto frame = journal_detail::encode_header_frame(header);
  image.insert(image.end(), frame.begin(), frame.end());
  auto first = make_record(0);
  first.num_sources = 3;
  auto dup = make_record(0);
  dup.num_sources = 99;  // distinguishable payload, same job_index
  for (const auto* rec : {&first, &dup, &dup}) {
    frame = journal_detail::encode_record_frame(*rec);
    image.insert(image.end(), frame.begin(), frame.end());
  }
  temp_journal tj{"duplicates"};
  write_bytes(tj.path, image);
  auto read = read_journal(tj.path);
  ASSERT_TRUE(read.ok()) << read.error().message();
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].num_sources, 3u) << "first record must win";
  EXPECT_EQ(read->duplicates_dropped, 2u);
}

TEST(JournalCorpus, ValidCrcUndecodablePayloadIsTypedCorrupt) {
  // A frame whose CRC is fine but whose payload is not a record (unknown
  // kind byte): framing cannot save it, the decoder must reject it typed.
  std::vector<std::uint8_t> image{'V', 'A', 'B', 'I', 'J', 'R', 'N', 'L'};
  journal_header header;
  header.num_jobs = 1;
  auto frame = journal_detail::encode_header_frame(header);
  image.insert(image.end(), frame.begin(), frame.end());
  const std::vector<std::uint8_t> payload{0x7F, 0x01, 0x02, 0x03};
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  auto rec_frame = journal_detail::encode_record_frame(make_record(0));
  // Hand-build the bogus frame: len | crc | payload.
  for (unsigned shift = 0; shift < 32; shift += 8) {
    image.push_back(
        static_cast<std::uint8_t>((payload.size() >> shift) & 0xFF));
  }
  for (unsigned shift = 0; shift < 32; shift += 8) {
    image.push_back(static_cast<std::uint8_t>((crc >> shift) & 0xFF));
  }
  image.insert(image.end(), payload.begin(), payload.end());
  // An intact record after it, so tail-dropping is not an option.
  image.insert(image.end(), rec_frame.begin(), rec_frame.end());
  temp_journal tj{"bad_kind"};
  write_bytes(tj.path, image);
  auto read = read_journal(tj.path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, solve_code::journal_corrupt);
}

// --- typed rejection of journals that do not match the resumed batch -------

std::vector<batch_job> tiny_batch(std::size_t n) {
  std::vector<batch_job> jobs(n);
  for (auto& job : jobs) {
    tree::random_tree_options g;
    g.num_sinks = 25;
    job.generate = g;
    job.options.library = timing::standard_library();
  }
  return jobs;
}

solve_outcome<journaled_batch> run(std::vector<batch_job> jobs,
                                   const std::string& path,
                                   std::uint64_t seed, bool resume) {
  batch_solver::config cfg;
  cfg.num_threads = 1;
  cfg.batch_seed = seed;
  batch_solver solver{cfg};
  batch_journal_options jopts;
  jopts.path = path;
  jopts.resume = resume;
  return solver.solve_journaled(jobs, jopts);
}

TEST(JournalCorpus, ResumeWithDifferentSeedIsTypedMismatch) {
  temp_journal tj{"seed_mismatch"};
  ASSERT_TRUE(run(tiny_batch(2), tj.path, 11, false).ok());
  auto resumed = run(tiny_batch(2), tj.path, 12, true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.error().code, solve_code::journal_mismatch);
}

TEST(JournalCorpus, ResumeWithDifferentJobCountIsTypedMismatch) {
  temp_journal tj{"count_mismatch"};
  ASSERT_TRUE(run(tiny_batch(2), tj.path, 11, false).ok());
  auto resumed = run(tiny_batch(3), tj.path, 11, true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.error().code, solve_code::journal_mismatch);
}

TEST(JournalCorpus, ResumeWithDifferentOptionsIsTypedMismatch) {
  temp_journal tj{"options_mismatch"};
  ASSERT_TRUE(run(tiny_batch(2), tj.path, 11, false).ok());
  auto jobs = tiny_batch(2);
  jobs[0].options.driver_res_ohm += 25.0;  // a different problem entirely
  auto resumed = run(std::move(jobs), tj.path, 11, true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.error().code, solve_code::journal_mismatch);
}

TEST(JournalCorpus, ResumeFromCorruptJournalIsTypedNotSilent) {
  temp_journal tj{"resume_corrupt"};
  ASSERT_TRUE(run(tiny_batch(3), tj.path, 11, false).ok());
  auto image = read_bytes(tj.path);
  ASSERT_GT(image.size(), 200u);
  image[image.size() / 2] ^= 0x08;  // mid-log damage
  write_bytes(tj.path, image);
  auto resumed = run(tiny_batch(3), tj.path, 11, true);
  // Depending on which frame the midpoint lands in, this is either mid-log
  // corruption (typed) or a torn tail (recovered, rest re-solved). Both are
  // sound; silent acceptance of a damaged record is not, and verify below
  // that the successful case still solved every job.
  if (resumed.ok()) {
    for (const auto& slot : resumed->slots) {
      EXPECT_TRUE(slot.ok());
    }
  } else {
    EXPECT_EQ(resumed.error().code, solve_code::journal_corrupt);
  }
}

// --- fault-injected writer damage ------------------------------------------

TEST(JournalCorpus, ShortCheckpointWriteLosesTailNotSoundness) {
  // journal_write_short truncates every checkpoint image by 13 bytes -- a
  // crash between write() and the full image landing. The next open must
  // recover a clean prefix, and a resume must re-solve what the tail lost.
  temp_journal tj{"write_short"};
  testing::arm("journal_write_short:after=0");
  auto first = run(tiny_batch(3), tj.path, 11, false);
  testing::disarm();
  ASSERT_TRUE(first.ok());

  auto read = read_journal(tj.path);
  ASSERT_TRUE(read.ok()) << read.error().message();
  EXPECT_GT(read->dropped_tail_bytes, 0u);
  EXPECT_LT(read->records.size(), 3u);

  auto resumed = run(tiny_batch(3), tj.path, 11, true);
  ASSERT_TRUE(resumed.ok()) << resumed.error().message();
  EXPECT_EQ(resumed->restored, read->records.size());
  for (const auto& slot : resumed->slots) EXPECT_TRUE(slot.ok());
}

TEST(JournalCorpus, CrcFlipOnAppendIsDetectedOnRead) {
  // journal_crc_flip flips a payload bit *after* the CRC is computed: the
  // file carries a record whose checksum cannot match. Reading it back must
  // detect the damage (tail drop or typed corrupt), never hand the flipped
  // record back as valid.
  temp_journal tj{"crc_flip"};
  testing::arm("journal_crc_flip:after=1");  // flip the second record
  auto first = run(tiny_batch(3), tj.path, 11, false);
  testing::disarm();
  ASSERT_TRUE(first.ok());

  auto read = read_journal(tj.path);
  if (read.ok()) {
    // The flipped frame was the last intact thing before EOF: torn tail.
    EXPECT_LT(read->records.size(), 3u);
    EXPECT_GT(read->dropped_tail_bytes, 0u);
  } else {
    EXPECT_EQ(read.error().code, solve_code::journal_corrupt);
  }
}

}  // namespace
}  // namespace vabi::core
