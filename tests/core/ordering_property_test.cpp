// Property tests for the paper's ordering results:
//
//   Lemma 2:   any two jointly-normal solutions can be ordered at p = 0.5;
//   Lemma 3/4: P(.>.) > 0.5 is transitive and equivalent to mean ordering;
//   Theorem 2: P(.>.) > pbar is transitive for any pbar in [0.5, 1];
//   and transitivity of the full 2P dominance over random candidate triples.
//
// Random dependent triples are built as sparse linear forms over a shared
// variation space -- exactly the structure the DP produces.
#include <random>

#include <gtest/gtest.h>

#include "core/pruning.hpp"
#include "stats/linear_form.hpp"
#include "stats/rng.hpp"

namespace vabi::core {
namespace {

struct triple_fixture {
  stats::variation_space space;
  std::vector<stats::linear_form> forms;

  explicit triple_fixture(std::uint64_t seed, int count = 3) {
    for (int i = 0; i < 8; ++i) {
      space.add_source(stats::source_kind::random_device, 0.3 + 0.2 * i);
    }
    auto rng = stats::make_rng(seed);
    std::uniform_real_distribution<double> mean(-5.0, 5.0);
    std::uniform_real_distribution<double> coeff(-1.0, 1.0);
    for (int k = 0; k < count; ++k) {
      stats::linear_form f{mean(rng)};
      for (stats::source_id id = 0; id < 8; ++id) {
        f.add_term(id, coeff(rng));
      }
      forms.push_back(std::move(f));
    }
  }
};

class OrderingProperty : public ::testing::TestWithParam<int> {};

TEST_P(OrderingProperty, Lemma2AlwaysOrderable) {
  triple_fixture fx(100 + static_cast<std::uint64_t>(GetParam()), 2);
  const double p12 = stats::prob_greater(fx.forms[0], fx.forms[1], fx.space);
  const double p21 = stats::prob_greater(fx.forms[1], fx.forms[0], fx.space);
  EXPECT_TRUE(p12 >= 0.5 || p21 >= 0.5);
  EXPECT_NEAR(p12 + p21, 1.0, 1e-12);
}

TEST_P(OrderingProperty, Lemma4MeanEquivalence) {
  triple_fixture fx(200 + static_cast<std::uint64_t>(GetParam()), 2);
  const double p = stats::prob_greater(fx.forms[0], fx.forms[1], fx.space);
  if (fx.forms[0].mean() > fx.forms[1].mean()) {
    EXPECT_GT(p, 0.5);
  } else if (fx.forms[0].mean() < fx.forms[1].mean()) {
    EXPECT_LT(p, 0.5);
  }
}

TEST_P(OrderingProperty, Lemma3TransitivityAtHalf) {
  triple_fixture fx(300 + static_cast<std::uint64_t>(GetParam()));
  const auto& t = fx.forms;
  const double p12 = stats::prob_greater(t[0], t[1], fx.space);
  const double p23 = stats::prob_greater(t[1], t[2], fx.space);
  if (p12 > 0.5 && p23 > 0.5) {
    EXPECT_GT(stats::prob_greater(t[0], t[2], fx.space), 0.5);
  }
}

TEST_P(OrderingProperty, Theorem2TransitivityAtAnyPbar) {
  triple_fixture fx(400 + static_cast<std::uint64_t>(GetParam()));
  const auto& t = fx.forms;
  const double p12 = stats::prob_greater(t[0], t[1], fx.space);
  const double p23 = stats::prob_greater(t[1], t[2], fx.space);
  const double p13 = stats::prob_greater(t[0], t[2], fx.space);
  for (const double pbar : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    if (p12 > pbar && p23 > pbar) {
      EXPECT_GT(p13, pbar) << "pbar=" << pbar << " p12=" << p12
                           << " p23=" << p23;
    }
  }
}

TEST_P(OrderingProperty, TwoParamDominanceTransitiveOverCandidates) {
  // Build three candidates (load, rat) from two independent triples and check
  // dominance transitivity for several parameter settings.
  triple_fixture loads(500 + static_cast<std::uint64_t>(GetParam()));
  triple_fixture rats(600 + static_cast<std::uint64_t>(GetParam()));
  // Loads must be positive-ish; shift them up.
  std::vector<stat_candidate> c(3);
  for (int i = 0; i < 3; ++i) {
    stats::linear_form load = loads.forms[i];
    load += 20.0;
    c[i] = {std::move(load), rats.forms[i], nullptr};
  }
  for (const double p : {0.5, 0.7, 0.9}) {
    two_param_rule rule;
    rule.p_load = p;
    rule.p_rat = p;
    // NOTE: loads and rats live in different spaces here only notionally --
    // use the load space for both (ids overlap deliberately; this just makes
    // the forms dependent, which is the point).
    const auto& space = loads.space;
    if (dominates(rule, c[0], c[1], space) &&
        dominates(rule, c[1], c[2], space)) {
      EXPECT_TRUE(dominates(rule, c[0], c[2], space)) << "p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, OrderingProperty, ::testing::Range(0, 50));

}  // namespace
}  // namespace vabi::core
