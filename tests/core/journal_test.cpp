// Durable result journal: codec round-trips, journaled-vs-plain equality,
// and the resume invariant (a resumed batch is bit-identical to an
// uninterrupted one). The crash matrix itself lives in
// crash_recovery_test.cpp; this file covers the storage layer and the happy
// resume paths.
#include "core/journal.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "batch_hash_test_util.hpp"
#include "core/parallel.hpp"
#include "timing/buffer_library.hpp"

namespace vabi::core {
namespace {

using test_util::hash_outcomes;

/// Unique-ish journal path per test; removed on scope exit.
struct temp_journal {
  std::string path;
  explicit temp_journal(const std::string& name)
      : path(::testing::TempDir() + "vabi_journal_" + name + ".vjl") {
    std::remove(path.c_str());
  }
  ~temp_journal() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
};

std::vector<batch_job> small_batch(std::size_t num_jobs,
                                   std::size_t sinks = 40) {
  std::vector<batch_job> jobs(num_jobs);
  for (auto& job : jobs) {
    tree::random_tree_options g;
    g.num_sinks = sinks;
    job.generate = g;
    job.options.library = timing::standard_library();
  }
  return jobs;
}

batch_solver make_solver(std::size_t threads = 2, std::uint64_t seed = 11) {
  batch_solver::config cfg;
  cfg.num_threads = threads;
  cfg.batch_seed = seed;
  return batch_solver{cfg};
}

TEST(Journal, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for the ASCII digits "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
}

TEST(Journal, RecordRoundTripIsBitExact) {
  // Doubles that a decimal text format would mangle: denormals, -0.0,
  // values needing all 17 digits. The journal stores raw bit patterns, so
  // every one must survive exactly.
  const double nasty[] = {
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      0.1,
      1.0 / 3.0,
      -1.2345678901234567e-308,
      1.7976931348623157e308,
  };

  journal_header header;
  header.has_batch_seed = true;
  header.batch_seed = 0xDEADBEEFCAFEBABEull;
  header.num_jobs = 3;
  header.jobs_fingerprint = 42;

  journal_record rec;
  rec.job_index = 2;
  rec.fingerprint = 77;
  rec.ok = true;
  rec.num_sources = 9;
  std::vector<stats::lf_term> terms;
  for (std::size_t k = 0; k < std::size(nasty); ++k) {
    terms.push_back({static_cast<std::uint32_t>(k), nasty[k]});
  }
  rec.result.root_rat = stats::linear_form{nasty[4], terms};
  rec.result.assignment = timing::buffer_assignment{4};
  rec.result.assignment.place(2, 1);
  rec.result.wires = timing::wire_assignment{4};
  rec.result.num_buffers = 1;
  rec.result.stats.candidates_created = 123;
  rec.result.stats.wall_seconds = 0.25;
  rec.result.path = solve_path::primary;

  temp_journal tj{"roundtrip"};
  {
    journal_writer writer{tj.path, header, 1, 0};
    writer.append(rec);
    writer.flush();
    EXPECT_TRUE(writer.io_error().empty());
  }

  auto read = read_journal(tj.path);
  ASSERT_TRUE(read.ok()) << read.error().message();
  ASSERT_TRUE(read->has_header);
  EXPECT_EQ(read->header.batch_seed, header.batch_seed);
  EXPECT_TRUE(read->header.has_batch_seed);
  EXPECT_EQ(read->header.num_jobs, header.num_jobs);
  EXPECT_EQ(read->header.jobs_fingerprint, header.jobs_fingerprint);
  ASSERT_EQ(read->records.size(), 1u);

  const journal_record& got = read->records[0];
  EXPECT_EQ(got.job_index, rec.job_index);
  EXPECT_EQ(got.fingerprint, rec.fingerprint);
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.num_sources, rec.num_sources);
  const auto want_terms = rec.result.root_rat.terms();
  const auto got_terms = got.result.root_rat.terms();
  ASSERT_EQ(got_terms.size(), want_terms.size());
  for (std::size_t k = 0; k < want_terms.size(); ++k) {
    EXPECT_EQ(got_terms[k].id, want_terms[k].id);
    // Bit-pattern equality: distinguishes -0.0 from 0.0, exact denormals.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got_terms[k].coeff),
              std::bit_cast<std::uint64_t>(want_terms[k].coeff))
        << "term " << k;
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.result.root_rat.nominal()),
            std::bit_cast<std::uint64_t>(rec.result.root_rat.nominal()));
  ASSERT_EQ(got.result.assignment.num_nodes(), 4u);
  EXPECT_TRUE(got.result.assignment.has_buffer(2));
  EXPECT_EQ(got.result.assignment.buffer(2), 1u);
  EXPECT_EQ(got.result.num_buffers, 1u);
  EXPECT_EQ(got.result.stats.candidates_created, 123u);
}

TEST(Journal, ErrorRecordRoundTrips) {
  journal_header header;
  header.num_jobs = 1;

  journal_record rec;
  rec.job_index = 0;
  rec.fingerprint = 5;
  rec.ok = false;
  rec.code = solve_code::candidate_cap;
  rec.error_node = 17;
  rec.detail = "candidate list exceeded max_list_size at node 17";

  temp_journal tj{"error_record"};
  {
    journal_writer writer{tj.path, header};
    writer.append(rec);
    writer.flush();
  }
  auto read = read_journal(tj.path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_FALSE(read->records[0].ok);
  EXPECT_EQ(read->records[0].code, solve_code::candidate_cap);
  EXPECT_EQ(read->records[0].error_node, 17u);
  EXPECT_EQ(read->records[0].detail, rec.detail);
}

TEST(Journal, MissingFileReadsAsEmpty) {
  auto read = read_journal(::testing::TempDir() + "vabi_journal_nonexistent.vjl");
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->has_header);
  EXPECT_TRUE(read->records.empty());
}

TEST(Journal, JournaledBatchIsBitIdenticalToPlain) {
  const auto jobs = small_batch(6);
  auto solver = make_solver();
  const auto plain = solver.solve_outcomes(jobs);

  temp_journal tj{"vs_plain"};
  batch_journal_options jopts;
  jopts.path = tj.path;
  jopts.checkpoint_every_jobs = 2;
  auto journaled = solver.solve_journaled(jobs, jopts);
  ASSERT_TRUE(journaled.ok()) << journaled.error().message();
  EXPECT_EQ(journaled->restored, 0u);
  EXPECT_EQ(journaled->solved, jobs.size());
  EXPECT_GE(journaled->checkpoints, 3u);  // every 2 jobs + final flush
  EXPECT_TRUE(journaled->journal_warning.empty());

  EXPECT_EQ(hash_outcomes(journaled->slots), hash_outcomes(plain));
}

TEST(Journal, ResumeFromCompleteJournalRestoresEverythingBitIdentically) {
  const auto jobs = small_batch(5);
  auto solver = make_solver();

  temp_journal tj{"resume_complete"};
  batch_journal_options jopts;
  jopts.path = tj.path;
  auto first = solver.solve_journaled(jobs, jopts);
  ASSERT_TRUE(first.ok());

  jopts.resume = true;
  jopts.verify_restored = true;  // the resume invariant, executable
  auto second = solver.solve_journaled(jobs, jopts);
  ASSERT_TRUE(second.ok()) << second.error().message();
  EXPECT_EQ(second->restored, jobs.size());
  EXPECT_EQ(second->solved, 0u);
  EXPECT_EQ(hash_outcomes(second->slots), hash_outcomes(first->slots));
}

TEST(Journal, ResumeFromPartialJournalSolvesOnlyTheRest) {
  const auto jobs = small_batch(6);
  auto solver = make_solver();

  temp_journal tj{"resume_partial"};
  batch_journal_options jopts;
  jopts.path = tj.path;
  auto full = solver.solve_journaled(jobs, jopts);
  ASSERT_TRUE(full.ok());

  // Craft a partial journal: header + the records for jobs 0, 2 and 4 only,
  // exactly as a run killed mid-way would have left them.
  auto read = read_journal(tj.path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), jobs.size());
  {
    std::ofstream os(tj.path, std::ios::binary | std::ios::trunc);
    os.write("VABIJRNL", 8);
    auto frame = journal_detail::encode_header_frame(read->header);
    os.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
    for (const auto& rec : read->records) {
      if (rec.job_index % 2 != 0) continue;
      frame = journal_detail::encode_record_frame(rec);
      os.write(reinterpret_cast<const char*>(frame.data()),
               static_cast<std::streamsize>(frame.size()));
    }
  }

  jopts.resume = true;
  auto resumed = solver.solve_journaled(jobs, jopts);
  ASSERT_TRUE(resumed.ok()) << resumed.error().message();
  EXPECT_EQ(resumed->restored, 3u);
  EXPECT_EQ(resumed->solved, 3u);
  EXPECT_EQ(hash_outcomes(resumed->slots), hash_outcomes(full->slots));
}

TEST(Journal, ResumeIsThreadCountInvariant) {
  const auto jobs = small_batch(6);

  temp_journal tj{"resume_threads"};
  batch_journal_options jopts;
  jopts.path = tj.path;

  auto serial = make_solver(/*threads=*/1);
  auto reference = serial.solve_outcomes(jobs);

  auto first = make_solver(/*threads=*/1).solve_journaled(jobs, jopts);
  ASSERT_TRUE(first.ok());

  // Keep only half the records, then resume on 8 threads: the restored half
  // and the re-solved half must both match the serial reference bit for bit.
  auto read = read_journal(tj.path);
  ASSERT_TRUE(read.ok());
  {
    std::ofstream os(tj.path, std::ios::binary | std::ios::trunc);
    os.write("VABIJRNL", 8);
    auto frame = journal_detail::encode_header_frame(read->header);
    os.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
    for (const auto& rec : read->records) {
      if (rec.job_index >= 3) continue;
      frame = journal_detail::encode_record_frame(rec);
      os.write(reinterpret_cast<const char*>(frame.data()),
               static_cast<std::streamsize>(frame.size()));
    }
  }
  jopts.resume = true;
  auto resumed = make_solver(/*threads=*/8).solve_journaled(jobs, jopts);
  ASSERT_TRUE(resumed.ok()) << resumed.error().message();
  EXPECT_EQ(resumed->restored, 3u);
  EXPECT_EQ(hash_outcomes(resumed->slots), hash_outcomes(reference));
}

TEST(Journal, ErrorOutcomesAreJournaledAndRestored) {
  // Job 1 has neither a tree nor generator options: solving it yields a
  // typed error, and that *error* must journal and restore verbatim.
  auto jobs = small_batch(3);
  jobs[1].generate.reset();

  auto solver = make_solver();
  temp_journal tj{"error_restore"};
  batch_journal_options jopts;
  jopts.path = tj.path;
  auto first = solver.solve_journaled(jobs, jopts);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->slots[1].ok());
  const auto code = first->slots[1].error().code;
  const auto detail = first->slots[1].error().detail;

  jopts.resume = true;
  auto second = solver.solve_journaled(jobs, jopts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->restored, 3u);
  ASSERT_FALSE(second->slots[1].ok());
  EXPECT_EQ(second->slots[1].error().code, code);
  EXPECT_EQ(second->slots[1].error().detail, detail);
  EXPECT_EQ(hash_outcomes(second->slots), hash_outcomes(first->slots));
}

TEST(Journal, FingerprintSeesOptionsTreeAndSeed) {
  auto jobs = small_batch(2);
  const auto base = fingerprint_job(jobs[0], 0, 11);

  EXPECT_NE(fingerprint_job(jobs[0], 1, 11), base) << "index must matter";
  EXPECT_NE(fingerprint_job(jobs[0], 0, 12), base) << "batch seed must matter";

  auto tweaked = jobs[0];
  tweaked.options.driver_res_ohm += 1.0;
  EXPECT_NE(fingerprint_job(tweaked, 0, 11), base) << "options must matter";

  tweaked = jobs[0];
  tweaked.generate->num_sinks += 1;
  EXPECT_NE(fingerprint_job(tweaked, 0, 11), base) << "generator must matter";

  tweaked = jobs[0];
  tweaked.model.mode = layout::nom_mode();
  EXPECT_NE(fingerprint_job(tweaked, 0, 11), base) << "model config must matter";
}

}  // namespace
}  // namespace vabi::core
