// Cross-rule equivalence experiments from the paper, in miniature:
//
//   - 2P and 4P optimize to (nearly) the same root RAT where 4P is feasible
//     (Section 5.2's premise for the runtime comparison being apples/apples);
//   - varying pbar_L, pbar_T in [0.5, 0.95] barely changes the optimized RAT
//     (Section 5.3's last experiment, "< 0.1% difference").
#include <gtest/gtest.h>

#include "core/statistical_dp.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

layout::process_model make_wid_model(const tree::routing_tree& t) {
  layout::process_model_config c;
  c.mode = layout::wid_mode();
  layout::bbox die = t.bounding_box();
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  return layout::process_model{die, c};
}

stat_options options_with(pruning_kind kind) {
  stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  o.rule = kind;
  o.max_candidates = 2'000'000;  // keep 4P bounded on the tiny tree
  return o;
}

class RuleEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RuleEquivalence, TwoParamMatchesFourParamOnSmallTrees) {
  tree::random_tree_options to;
  to.num_sinks = 8;
  to.die_side_um = 6000.0;
  to.seed = 3000 + static_cast<std::uint64_t>(GetParam());
  to.sink_cap_min_pf = 0.02;
  to.sink_cap_max_pf = 0.08;
  const auto t = tree::make_random_tree(to);

  auto model_2p = make_wid_model(t);
  const auto r2 = run_statistical_insertion(t, model_2p,
                                            options_with(pruning_kind::two_param));
  auto model_4p = make_wid_model(t);
  const auto r4 = run_statistical_insertion(
      t, model_4p, options_with(pruning_kind::four_param));
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r4.ok());
  // 4P keeps a superset of candidates, so its chosen optimum can only be
  // equal or marginally different; require agreement within 2%.
  const double scale = std::max(1.0, std::abs(r4.root_rat.mean()));
  EXPECT_NEAR(r2.root_rat.mean(), r4.root_rat.mean(), 0.02 * scale)
      << "seed " << to.seed;
}

TEST_P(RuleEquivalence, FourParamKeepsAtLeastAsManyCandidates) {
  tree::random_tree_options to;
  to.num_sinks = 8;
  to.seed = 4000 + static_cast<std::uint64_t>(GetParam());
  const auto t = tree::make_random_tree(to);
  auto m2 = make_wid_model(t);
  auto m4 = make_wid_model(t);
  const auto r2 = run_statistical_insertion(t, m2,
                                            options_with(pruning_kind::two_param));
  const auto r4 = run_statistical_insertion(
      t, m4, options_with(pruning_kind::four_param));
  EXPECT_GE(r4.stats.peak_list_size, r2.stats.peak_list_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleEquivalence, ::testing::Range(0, 8));

TEST(ParamSweep, PbarBarelyChangesOptimizedRat) {
  tree::random_tree_options to;
  to.num_sinks = 40;
  to.die_side_um = 8000.0;
  to.seed = 55;
  const auto t = tree::make_random_tree(to);

  double reference = 0.0;
  bool first = true;
  for (const double p : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    auto model = make_wid_model(t);
    auto options = options_with(pruning_kind::two_param);
    options.two_param.p_load = p;
    options.two_param.p_rat = p;
    const auto r = run_statistical_insertion(t, model, options);
    ASSERT_TRUE(r.ok()) << "p=" << p;
    if (first) {
      reference = r.root_rat.mean();
      first = false;
    } else {
      EXPECT_NEAR(r.root_rat.mean(), reference,
                  0.005 * std::abs(reference))
          << "p=" << p;
    }
  }
}

TEST(CornerRuleRun, ProducesComparableDesign) {
  tree::random_tree_options to;
  to.num_sinks = 20;
  to.seed = 77;
  const auto t = tree::make_random_tree(to);
  auto m1 = make_wid_model(t);
  auto m2 = make_wid_model(t);
  const auto r2p =
      run_statistical_insertion(t, m1, options_with(pruning_kind::two_param));
  const auto r1p =
      run_statistical_insertion(t, m2, options_with(pruning_kind::corner));
  ASSERT_TRUE(r2p.ok());
  ASSERT_TRUE(r1p.ok());
  const double scale = std::abs(r2p.root_rat.mean());
  EXPECT_NEAR(r1p.root_rat.mean(), r2p.root_rat.mean(), 0.05 * scale);
}

}  // namespace
}  // namespace vabi::core
