#include <gtest/gtest.h>

#include "core/solution.hpp"
#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

TEST(DecisionArena, LeafBufferMergeChain) {
  decision_arena arena;
  const auto* leaf = arena.leaf();
  const auto* buf = arena.buffered(3, 1, leaf);
  const auto* other = arena.leaf();
  const auto* merge = arena.merged(buf, other);
  EXPECT_EQ(arena.size(), 4u);
  const auto a = extract_assignment(merge, 10);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.has_buffer(3));
  EXPECT_EQ(a.buffer(3), 1u);
}

TEST(DecisionArena, SharedSubDagCountedOnce) {
  decision_arena arena;
  const auto* leaf = arena.leaf();
  const auto* buf = arena.buffered(2, 0, leaf);
  // The same buffered decision feeds both sides of a merge (possible with
  // shared subtrees); extraction must be idempotent.
  const auto* merge = arena.merged(buf, buf);
  const auto a = extract_assignment(merge, 5);
  EXPECT_EQ(a.count(), 1u);
}

TEST(DecisionArena, NullRootGivesEmptyAssignment) {
  const auto a = extract_assignment(nullptr, 4);
  EXPECT_EQ(a.count(), 0u);
}

TEST(Backtrace, DeepChainDoesNotOverflowStack) {
  decision_arena arena;
  const decision* d = arena.leaf();
  for (int i = 0; i < 200000; ++i) {
    d = arena.buffered(1, 0, d);
  }
  const auto a = extract_assignment(d, 3);
  EXPECT_TRUE(a.has_buffer(1));
}

TEST(Backtrace, StatisticalAssignmentReproducesRatMean) {
  // The DP's reported root RAT form must be reproducible by re-walking the
  // tree with the extracted assignment and the same recurrences.
  tree::random_tree_options to;
  to.num_sinks = 30;
  to.die_side_um = 6000.0;
  to.seed = 90;
  const auto t = tree::make_random_tree(to);

  layout::process_model_config c;
  c.mode = layout::wid_mode();
  layout::bbox die = t.bounding_box();
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  layout::process_model model{die, c};

  stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  const auto r = run_statistical_insertion(t, model, o);
  ASSERT_TRUE(r.ok());

  // Nominal check: replay with the deterministic engine semantics.
  const auto eval = timing::evaluate_buffered_tree(
      t, o.wire, o.library, r.assignment, o.driver_res_ohm);
  // The canonical-form mean differs from the nominal Elmore value only by the
  // statistical-min mean corrections, which are small here.
  EXPECT_NEAR(eval.root_rat_ps, r.root_rat.mean(),
              0.02 * std::abs(eval.root_rat_ps) + 5.0);
}

}  // namespace
}  // namespace vabi::core
