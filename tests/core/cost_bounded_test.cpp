#include "core/cost_bounded.hpp"

#include <gtest/gtest.h>

#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

cost_bounded_options make_options(timing::buffer_library lib) {
  cost_bounded_options o;
  o.base.library = std::move(lib);
  o.base.driver_res_ohm = 150.0;
  return o;
}

TEST(CostBounded, FrontierMonotone) {
  tree::random_tree_options to;
  to.num_sinks = 30;
  to.die_side_um = 8000.0;
  to.seed = 21;
  const auto t = tree::make_random_tree(to);
  const auto r =
      run_cost_bounded_insertion(t, make_options(timing::standard_library()));
  ASSERT_FALSE(r.frontier.empty());
  for (std::size_t i = 1; i < r.frontier.size(); ++i) {
    EXPECT_LT(r.frontier[i - 1].cost, r.frontier[i].cost);
    EXPECT_LT(r.frontier[i - 1].root_rat_ps, r.frontier[i].root_rat_ps);
  }
  // Cost-0 point exists (the unbuffered design).
  EXPECT_DOUBLE_EQ(r.frontier.front().cost, 0.0);
}

TEST(CostBounded, BestFrontierPointMatchesVanGinneken) {
  // The most expensive frontier point is the unconstrained optimum.
  tree::random_tree_options to;
  to.num_sinks = 40;
  to.die_side_um = 8000.0;
  to.seed = 22;
  const auto t = tree::make_random_tree(to);
  const auto o = make_options(timing::standard_library());
  const auto cb = run_cost_bounded_insertion(t, o);
  const auto vg = run_van_ginneken(t, o.base);
  ASSERT_FALSE(cb.frontier.empty());
  EXPECT_NEAR(cb.frontier.back().root_rat_ps, vg.root_rat_ps, 1e-9);
}

TEST(CostBounded, CheapestMeetingTarget) {
  tree::random_tree_options to;
  to.num_sinks = 30;
  to.die_side_um = 8000.0;
  to.seed = 23;
  const auto t = tree::make_random_tree(to);
  const auto r =
      run_cost_bounded_insertion(t, make_options(timing::standard_library()));
  const double best = r.frontier.back().root_rat_ps;
  const double worst = r.frontier.front().root_rat_ps;

  // A target between worst and best is met by something cheaper than max.
  const double target = 0.5 * (best + worst);
  const auto point = r.cheapest_meeting(target);
  ASSERT_TRUE(point.has_value());
  EXPECT_GE(point->root_rat_ps, target);
  EXPECT_LE(point->cost, r.frontier.back().cost);
  // Relaxing the target can only get cheaper.
  const auto relaxed = r.cheapest_meeting(worst);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_LE(relaxed->cost, point->cost);
  // An impossible target yields nullopt.
  EXPECT_FALSE(r.cheapest_meeting(best + 1.0).has_value());
}

TEST(CostBounded, AssignmentsReproduceFrontierRats) {
  tree::random_tree_options to;
  to.num_sinks = 25;
  to.die_side_um = 8000.0;
  to.seed = 24;
  const auto t = tree::make_random_tree(to);
  const auto o = make_options(timing::standard_library());
  const auto r = run_cost_bounded_insertion(t, o);
  for (const auto& p : r.frontier) {
    const auto eval = timing::evaluate_buffered_tree(
        t, o.base.wire, o.base.library, p.assignment, o.base.driver_res_ohm);
    EXPECT_NEAR(eval.root_rat_ps, p.root_rat_ps, 1e-6);
    EXPECT_NEAR(static_cast<double>(p.assignment.count()), p.cost, 1e-9);
  }
}

TEST(CostBounded, CustomCostsRespectTypeWeights) {
  tree::chain_options co;
  co.length_um = 6000.0;
  co.segments = 6;
  co.sink_cap_pf = 0.08;
  const auto t = tree::make_chain(co);
  auto o = make_options(timing::standard_library());
  o.buffer_costs = {1.0, 2.0, 4.0};  // area-like weights
  const auto r = run_cost_bounded_insertion(t, o);
  for (const auto& p : r.frontier) {
    double expected = 0.0;
    const auto h = p.assignment.histogram(o.base.library.size());
    for (std::size_t b = 0; b < h.size(); ++b) {
      expected += static_cast<double>(h[b]) * o.buffer_costs[b];
    }
    EXPECT_NEAR(p.cost, expected, 1e-9);
  }
}

TEST(CostBounded, MaxCostCapsFrontier) {
  tree::random_tree_options to;
  to.num_sinks = 30;
  to.die_side_um = 8000.0;
  to.seed = 25;
  const auto t = tree::make_random_tree(to);
  auto o = make_options(timing::standard_library());
  o.max_cost = 5.0;
  const auto r = run_cost_bounded_insertion(t, o);
  for (const auto& p : r.frontier) {
    EXPECT_LE(p.cost, 5.0);
  }
}

TEST(CostBounded, RejectsBadInput) {
  const auto t = tree::make_chain({});
  cost_bounded_options o;
  EXPECT_THROW(run_cost_bounded_insertion(t, o), std::invalid_argument);
  o.base.library = timing::standard_library();
  o.buffer_costs = {1.0};  // wrong size
  EXPECT_THROW(run_cost_bounded_insertion(t, o), std::invalid_argument);
}

TEST(CostBounded, MarginalBuffersAreExposedByTheFrontier) {
  // On a net where van Ginneken spends many buffers, the frontier shows how
  // few are needed to get within 1% of the optimum -- the low-power story
  // of [9].
  tree::random_tree_options to;
  to.num_sinks = 60;
  to.die_side_um = 9000.0;
  to.seed = 26;
  const auto t = tree::make_random_tree(to);
  const auto o = make_options(timing::single_buffer_library());
  const auto r = run_cost_bounded_insertion(t, o);
  const double best = r.frontier.back().root_rat_ps;
  const auto near_opt = r.cheapest_meeting(best - 0.01 * std::abs(best));
  ASSERT_TRUE(near_opt.has_value());
  EXPECT_LT(near_opt->cost, r.frontier.back().cost + 1e-9);
}

}  // namespace
}  // namespace vabi::core
