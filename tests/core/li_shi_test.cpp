// Differential suite of the Li-Shi per-type frontier (li_shi.hpp).
//
// The frontier promises the *same selections* as the classic per-type scan,
// so every test here is an equality check between li_shi_mode::always and
// li_shi_mode::never (the seed scan path, kept verbatim):
//
//   - the divide-and-conquer against a brute-force scan on random inputs,
//     including NaN-poisoned rows and columns;
//   - the deterministic engine across random trees x library sizes
//     {1, 2, 8, 32, 128}: root RAT bitwise, assignment, wires, and the
//     bit-identity work counters;
//   - the 2P mean statistical engine (the only stat regime the frontier
//     engages in), serial and parallel at 1/2/8 threads;
//   - no-op checks for the regimes that must stay on the scan path
//     (4P rule, non-mean selection percentile, b <= 2 under automatic);
//   - pinned golden hashes for b <= 2 under li_shi_mode::automatic -- the
//     configurations whose seed-era results may never move.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/li_shi.hpp"
#include "core/parallel.hpp"
#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "layout/process_model.hpp"
#include "timing/buffer_library.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

// ---------------------------------------------------------------------------
// Type order.
// ---------------------------------------------------------------------------

TEST(LiShiTypeOrder, SortsByResistanceDescendingStably) {
  timing::buffer_library lib{{
      {"a", 0.02, 40.0, 200.0},
      {"b", 0.04, 36.0, 400.0},
      {"c", 0.08, 33.0, 200.0},  // ties with "a": library order kept
      {"d", 0.16, 30.0, 100.0},
  }};
  const auto order = type_order_by_resistance(lib);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 3u);
}

// ---------------------------------------------------------------------------
// Divide-and-conquer vs brute scan.
// ---------------------------------------------------------------------------

// Deterministic splitmix64 for the property tests.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
double unit(std::uint64_t x) {  // [0, 1)
  return static_cast<double>(mix(x) >> 11) * 0x1p-53;
}

struct scan_case {
  timing::buffer_library lib;
  std::vector<double> load;  // strictly increasing (the prune invariant)
  std::vector<double> rat;
};

scan_case make_case(std::uint64_t seed, std::size_t num_types,
                    std::size_t num_cands, bool nan_device,
                    bool nan_candidate) {
  scan_case c;
  for (std::size_t b = 0; b < num_types; ++b) {
    timing::buffer_type t;
    t.name = "t" + std::to_string(b);
    t.cap_pf = 0.01 + 0.1 * unit(seed ^ (b * 3 + 1));
    // Coarse grid so equal resistances (ties) actually occur.
    t.res_ohm = 50.0 * (1.0 + static_cast<double>(mix(seed ^ (b * 3 + 2)) % 8));
    double delay = 20.0 + 30.0 * unit(seed ^ (b * 3 + 3));
    if (nan_device && b == num_types / 2) {
      delay = std::numeric_limits<double>::quiet_NaN();
    }
    t.delay_ps = delay;
    c.lib.add(std::move(t));
  }
  double load = 0.0;
  for (std::size_t k = 0; k < num_cands; ++k) {
    load += 0.001 + 0.05 * unit(seed ^ (k * 7 + 11));
    c.load.push_back(load);
    double rat = 1000.0 * unit(seed ^ (k * 7 + 13));
    if (nan_candidate && k == num_cands / 3) {
      rat = std::numeric_limits<double>::quiet_NaN();
    }
    c.rat.push_back(rat);
  }
  return c;
}

// buffer_library::check rejects NaN delay? It does not (NaN < 0 is false),
// which matches the engines: poisoned devices come from fault injection
// *after* library validation.
void check_against_brute(const scan_case& c) {
  const auto key = [&c](timing::buffer_index b, std::size_t k) {
    return c.rat[k] - c.lib[b].delay_ps - c.lib[b].res_ohm * c.load[k];
  };
  buffer_frontier frontier{c.lib};
  std::vector<std::size_t> got;
  frontier.best_per_type(c.load.size(), key, got);
  ASSERT_EQ(got.size(), c.lib.size());
  for (timing::buffer_index b = 0; b < c.lib.size(); ++b) {
    // The seed scan: strictly-greater / leftmost.
    double best_val = -std::numeric_limits<double>::infinity();
    std::size_t best_k = li_shi_npos;
    for (std::size_t k = 0; k < c.load.size(); ++k) {
      const double v = key(b, k);
      if (v > best_val) {
        best_val = v;
        best_k = k;
      }
    }
    EXPECT_EQ(got[b], best_k) << "type " << b;
  }
}

TEST(LiShiFrontier, MatchesBruteScanOnRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const std::size_t num_types = 1 + mix(seed) % 24;
    const std::size_t num_cands = 1 + mix(seed ^ 0xabc) % 60;
    check_against_brute(make_case(seed, num_types, num_cands, false, false));
  }
}

TEST(LiShiFrontier, MatchesBruteScanWithNaNDeviceRows) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    check_against_brute(make_case(seed, 9, 25, true, false));
  }
}

TEST(LiShiFrontier, MatchesBruteScanWithNaNCandidateColumns) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    check_against_brute(make_case(seed, 9, 25, false, true));
    check_against_brute(make_case(seed, 9, 25, true, true));
  }
}

TEST(LiShiFrontier, EmptyInputsYieldNpos) {
  buffer_frontier frontier{timing::standard_library()};
  std::vector<std::size_t> best;
  frontier.best_per_type(
      0, [](timing::buffer_index, std::size_t) { return 0.0; }, best);
  ASSERT_EQ(best.size(), 3u);
  for (const auto k : best) EXPECT_EQ(k, li_shi_npos);
}

// ---------------------------------------------------------------------------
// Engine differentials.
// ---------------------------------------------------------------------------

tree::routing_tree make_net(std::uint64_t seed, std::size_t sinks = 40) {
  tree::random_tree_options t;
  t.num_sinks = sinks;
  t.die_side_um = 5000.0;
  t.seed = seed;
  return tree::make_random_tree(t);
}

det_options make_det_options(const timing::buffer_library& lib) {
  det_options o;
  o.library = lib;
  o.driver_res_ohm = 150.0;
  return o;
}

void expect_det_equal(const det_result& a, const det_result& b,
                      const char* what) {
  // Bitwise: the frontier must make the *same selections*, so the whole DP
  // trace -- root value, design, and work counters -- is identical.
  EXPECT_EQ(std::memcmp(&a.root_rat_ps, &b.root_rat_ps, sizeof(double)), 0)
      << what << ": root RAT diverged (" << a.root_rat_ps << " vs "
      << b.root_rat_ps << ")";
  EXPECT_EQ(a.num_buffers, b.num_buffers) << what;
  ASSERT_EQ(a.assignment.num_nodes(), b.assignment.num_nodes()) << what;
  for (tree::node_id n = 0; n < a.assignment.num_nodes(); ++n) {
    ASSERT_EQ(a.assignment.has_buffer(n), b.assignment.has_buffer(n))
        << what << " node " << n;
    if (a.assignment.has_buffer(n)) {
      EXPECT_EQ(a.assignment.buffer(n), b.assignment.buffer(n))
          << what << " node " << n;
    }
  }
  EXPECT_EQ(a.stats.candidates_created, b.stats.candidates_created) << what;
  EXPECT_EQ(a.stats.candidates_pruned, b.stats.candidates_pruned) << what;
  EXPECT_EQ(a.stats.merge_pairs, b.stats.merge_pairs) << what;
  EXPECT_EQ(a.stats.peak_list_size, b.stats.peak_list_size) << what;
}

TEST(LiShiDeterministic, MatchesScanAcrossLibrarySizes) {
  for (const std::size_t b : {1u, 2u, 8u, 32u, 128u}) {
    const auto lib = timing::make_parameterized_library(b);
    for (std::uint64_t seed : {7ull, 19ull}) {
      const auto net = make_net(seed);
      det_options frontier = make_det_options(lib);
      frontier.li_shi = li_shi_mode::always;
      det_options scan = make_det_options(lib);
      scan.li_shi = li_shi_mode::never;
      const auto rf = run_van_ginneken(net, frontier);
      const auto rs = run_van_ginneken(net, scan);
      const std::string what =
          "b=" + std::to_string(b) + " seed=" + std::to_string(seed);
      expect_det_equal(rf, rs, what.c_str());
      EXPECT_GT(rf.stats.li_shi_nodes, 0u) << what;
      EXPECT_EQ(rs.stats.li_shi_nodes, 0u) << what;
    }
  }
}

TEST(LiShiDeterministic, MatchesScanWithWireSizing) {
  const auto lib = timing::make_parameterized_library(16);
  const auto net = make_net(23, 24);
  det_options frontier = make_det_options(lib);
  frontier.wire_width_multipliers = {1.0, 2.0, 4.0};
  frontier.li_shi = li_shi_mode::always;
  det_options scan = frontier;
  scan.li_shi = li_shi_mode::never;
  const auto rf = run_van_ginneken(net, frontier);
  const auto rs = run_van_ginneken(net, scan);
  expect_det_equal(rf, rs, "sized");
  for (tree::node_id n = 0; n < net.num_nodes(); ++n) {
    EXPECT_EQ(rf.wires.width(n), rs.wires.width(n)) << "node " << n;
  }
}

TEST(LiShiDeterministic, AutomaticEngagesOnlyAboveTwoTypes) {
  const auto net = make_net(3, 16);
  for (const std::size_t b : {1u, 2u, 3u, 8u}) {
    det_options o = make_det_options(timing::make_parameterized_library(b));
    const auto r = run_van_ginneken(net, o);  // automatic
    if (b <= 2) {
      EXPECT_EQ(r.stats.li_shi_nodes, 0u) << "b=" << b;
    } else {
      EXPECT_GT(r.stats.li_shi_nodes, 0u) << "b=" << b;
    }
  }
}

// -- statistical engine ------------------------------------------------------

layout::process_model make_model() {
  layout::process_model_config pc;
  pc.mode = layout::wid_mode();
  pc.spatial.profile = layout::spatial_profile::heterogeneous;
  return layout::process_model{layout::square_die(5000.0), pc};
}

stat_options make_stat_options(const timing::buffer_library& lib,
                               li_shi_mode mode) {
  stat_options o;
  o.library = lib;
  o.driver_res_ohm = 150.0;
  o.rule = pruning_kind::two_param;  // mean rule by default
  o.li_shi = mode;
  return o;
}

void expect_stat_equal(const stat_result& a, const stat_result& b,
                       const char* what) {
  ASSERT_TRUE(a.ok()) << what << ": " << a.stats.abort_reason;
  ASSERT_TRUE(b.ok()) << what << ": " << b.stats.abort_reason;
  const double na = a.root_rat.nominal();
  const double nb = b.root_rat.nominal();
  EXPECT_EQ(std::memcmp(&na, &nb, sizeof(double)), 0)
      << what << ": root nominal diverged";
  ASSERT_EQ(a.root_rat.num_terms(), b.root_rat.num_terms()) << what;
  const auto ta = a.root_rat.terms();
  const auto tb = b.root_rat.terms();
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].id, tb[i].id) << what << " term " << i;
    EXPECT_EQ(std::memcmp(&ta[i].coeff, &tb[i].coeff, sizeof(double)), 0)
        << what << " term " << i;
  }
  EXPECT_EQ(a.num_buffers, b.num_buffers) << what;
  for (tree::node_id n = 0; n < a.assignment.num_nodes(); ++n) {
    ASSERT_EQ(a.assignment.has_buffer(n), b.assignment.has_buffer(n))
        << what << " node " << n;
    if (a.assignment.has_buffer(n)) {
      EXPECT_EQ(a.assignment.buffer(n), b.assignment.buffer(n))
          << what << " node " << n;
    }
  }
  EXPECT_EQ(a.stats.candidates_created, b.stats.candidates_created) << what;
  EXPECT_EQ(a.stats.candidates_pruned, b.stats.candidates_pruned) << what;
  EXPECT_EQ(a.stats.merge_pairs, b.stats.merge_pairs) << what;
  EXPECT_EQ(a.stats.peak_list_size, b.stats.peak_list_size) << what;
}

TEST(LiShiStatistical, MeanRuleMatchesScanAcrossLibrarySizes) {
  for (const std::size_t b : {1u, 2u, 8u, 32u}) {
    const auto lib = timing::make_parameterized_library(b);
    const auto net = make_net(11, 32);
    // Fresh model per run: characterization registers variation sources.
    auto m1 = make_model();
    auto m2 = make_model();
    const auto rf = run_statistical_insertion(
        net, m1, make_stat_options(lib, li_shi_mode::always));
    const auto rs = run_statistical_insertion(
        net, m2, make_stat_options(lib, li_shi_mode::never));
    const std::string what = "b=" + std::to_string(b);
    expect_stat_equal(rf, rs, what.c_str());
    EXPECT_GT(rf.stats.li_shi_nodes, 0u) << what;
    EXPECT_EQ(rs.stats.li_shi_nodes, 0u) << what;
  }
}

TEST(LiShiStatistical, ParallelMatchesSerialAcrossThreadCounts) {
  const auto lib = timing::make_parameterized_library(32);
  const auto net = make_net(31, 48);
  auto serial_model = make_model();
  const auto serial = run_statistical_insertion(
      net, serial_model, make_stat_options(lib, li_shi_mode::automatic));
  ASSERT_GT(serial.stats.li_shi_nodes, 0u);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    thread_pool pool{threads};
    auto model = make_model();
    const auto par = run_parallel_insertion(
        net, model, make_stat_options(lib, li_shi_mode::automatic), pool);
    const std::string what = "threads=" + std::to_string(threads);
    expect_stat_equal(par, serial, what.c_str());
    EXPECT_EQ(par.stats.li_shi_nodes, serial.stats.li_shi_nodes) << what;
  }
}

TEST(LiShiStatistical, StaysOffOutsideTheMeanRegime) {
  const auto lib = timing::make_parameterized_library(8);
  const auto net = make_net(5, 12);

  // Non-mean selection percentile: frontier must not engage even on always.
  {
    auto m1 = make_model();
    auto m2 = make_model();
    auto always = make_stat_options(lib, li_shi_mode::always);
    always.selection_percentile = 0.05;
    auto never = make_stat_options(lib, li_shi_mode::never);
    never.selection_percentile = 0.05;
    const auto rf = run_statistical_insertion(net, m1, always);
    const auto rs = run_statistical_insertion(net, m2, never);
    EXPECT_EQ(rf.stats.li_shi_nodes, 0u);
    expect_stat_equal(rf, rs, "p05");
  }
  // Corner rule: not a mean-rule regime.
  {
    auto m = make_model();
    auto o = make_stat_options(lib, li_shi_mode::always);
    o.rule = pruning_kind::corner;
    const auto r = run_statistical_insertion(net, m, o);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.stats.li_shi_nodes, 0u);
  }
  // 4P rule: partial order, scan path only.
  {
    auto m = make_model();
    auto o = make_stat_options(lib, li_shi_mode::always);
    o.rule = pruning_kind::four_param;
    o.max_list_size = 4000;
    const auto r = run_statistical_insertion(net, m, o);
    EXPECT_EQ(r.stats.li_shi_nodes, 0u);
  }
}

// ---------------------------------------------------------------------------
// b <= 2 golden pins: under automatic these configurations must stay on the
// seed scan path byte for byte. Hash scheme matches
// golden_bitidentity_test.cpp (minus the wire widths: sizing is off here).
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_small_lib_run(std::size_t b) {
  const auto net = make_net(77, 32);
  auto model = make_model();
  const auto lib = b == 1 ? timing::single_buffer_library()
                          : timing::buffer_library{{
                                {"buf_x1", 0.020, 40.0, 400.0},
                                {"buf_x4", 0.080, 33.0, 100.0},
                            }};
  const auto r = run_statistical_insertion(
      net, model, make_stat_options(lib, li_shi_mode::automatic));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.stats.li_shi_nodes, 0u);

  std::uint64_t h = 1469598103934665603ull;
  const double nom = r.root_rat.nominal();
  h = fnv1a(h, &nom, sizeof nom);
  for (const auto& t : r.root_rat.terms()) {
    h = fnv1a(h, &t.id, sizeof t.id);
    h = fnv1a(h, &t.coeff, sizeof t.coeff);
  }
  for (tree::node_id n = 0; n < net.num_nodes(); ++n) {
    const unsigned char has = r.assignment.has_buffer(n) ? 1 : 0;
    h = fnv1a(h, &has, 1);
    if (has) {
      const auto buf = r.assignment.buffer(n);
      h = fnv1a(h, &buf, sizeof buf);
    }
  }
  const std::uint64_t counters[5] = {
      r.num_buffers, r.stats.candidates_created, r.stats.candidates_pruned,
      r.stats.merge_pairs, r.stats.peak_list_size};
  h = fnv1a(h, counters, sizeof counters);
  return h;
}

TEST(LiShiGolden, SmallLibrariesStayOnSeedPath) {
  // Captured from the seed scan path (li_shi_mode::never gives the same
  // hashes by construction -- see LiShiStatistical differentials). A move
  // here means b <= 2 behavior changed; that breaks the seed contract.
  EXPECT_EQ(hash_small_lib_run(1), 0xbde66ac0c883db05ull);
  EXPECT_EQ(hash_small_lib_run(2), 0x3052dbdfd193c61eull);
}

}  // namespace
}  // namespace vabi::core
