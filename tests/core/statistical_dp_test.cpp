#include "core/statistical_dp.hpp"

#include <gtest/gtest.h>

#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

stat_options base_options(timing::buffer_library lib) {
  stat_options o;
  o.library = std::move(lib);
  o.driver_res_ohm = 150.0;
  return o;
}

layout::process_model make_model(const tree::routing_tree& t,
                                 layout::variation_mode mode) {
  layout::process_model_config c;
  c.mode = mode;
  layout::bbox die = t.bounding_box();
  die.expand({die.lo.x - 1.0, die.lo.y - 1.0});
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  return layout::process_model{die, c};
}

TEST(StatisticalDp, ZeroVariationReproducesVanGinneken) {
  tree::random_tree_options to;
  to.num_sinks = 80;
  to.seed = 21;
  const auto t = tree::make_random_tree(to);

  det_options det = {timing::wire_model{}, timing::standard_library(), 150.0};
  const auto vg = run_van_ginneken(t, det);

  auto model = make_model(t, layout::nom_mode());
  auto options = base_options(timing::standard_library());
  options.root_percentile = 0.5;  // mean == deterministic value here
  const auto st = run_statistical_insertion(t, model, options);

  ASSERT_TRUE(st.ok());
  EXPECT_NEAR(st.root_rat.mean(), vg.root_rat_ps, 1e-6);
  EXPECT_EQ(st.num_buffers, vg.num_buffers);
  EXPECT_TRUE(st.root_rat.is_deterministic());
}

TEST(StatisticalDp, WidRunProducesRandomRat) {
  tree::random_tree_options to;
  to.num_sinks = 40;
  to.seed = 3;
  const auto t = tree::make_random_tree(to);
  auto model = make_model(t, layout::wid_mode());
  const auto r = run_statistical_insertion(
      t, model, base_options(timing::standard_library()));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.root_rat.stddev(model.space()), 0.0);
  EXPECT_GT(r.num_buffers, 0u);
  EXPECT_GT(r.stats.candidates_created, 0u);
  EXPECT_GT(r.stats.peak_list_size, 0u);
}

TEST(StatisticalDp, AssignmentOnlyUsesLegalPositions) {
  tree::random_tree_options to;
  to.num_sinks = 40;
  to.seed = 3;
  const auto t = tree::make_random_tree(to);
  auto model = make_model(t, layout::wid_mode());
  const auto r = run_statistical_insertion(
      t, model, base_options(timing::standard_library()));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.assignment.has_buffer(t.root()));
  EXPECT_EQ(r.assignment.count(), r.num_buffers);
}

TEST(StatisticalDp, D2dIgnoresSpatialSources) {
  tree::random_tree_options to;
  to.num_sinks = 30;
  to.seed = 8;
  const auto t = tree::make_random_tree(to);
  auto model = make_model(t, layout::d2d_mode());
  const auto r = run_statistical_insertion(
      t, model, base_options(timing::standard_library()));
  ASSERT_TRUE(r.ok());
  for (const auto& term : r.root_rat.terms()) {
    EXPECT_NE(model.space().kind(term.id), stats::source_kind::spatial);
  }
}

TEST(StatisticalDp, CandidateCapAborts) {
  tree::random_tree_options to;
  to.num_sinks = 60;
  to.seed = 4;
  const auto t = tree::make_random_tree(to);
  auto model = make_model(t, layout::wid_mode());
  auto options = base_options(timing::standard_library());
  options.max_candidates = 50;
  const auto r = run_statistical_insertion(t, model, options);
  EXPECT_TRUE(r.stats.aborted);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.stats.abort_reason.empty());
}

TEST(StatisticalDp, YieldDrivenSelectionAvoidsVariance) {
  // With selection by the 5th percentile, the optimizer should never produce
  // a design with a *worse* 5th-percentile root RAT than mean-driven
  // selection evaluated at the same percentile, and typically uses no more
  // buffers (marginal buffers cost sigma).
  tree::random_tree_options to;
  to.num_sinks = 100;
  to.die_side_um = 10000.0;
  to.seed = 31;
  to.criticality_balance = 0.8;
  const auto t = tree::make_random_tree(to);

  layout::process_model_config c;
  c.mode = layout::wid_mode();
  c.budgets.random_device = {0.05, 0.15};
  c.budgets.inter_die = {0.05, 0.15};
  c.budgets.spatial = {0.05, 0.15};
  c.spatial.profile = layout::spatial_profile::heterogeneous;

  auto opt_mean = base_options(timing::standard_library());
  opt_mean.selection_percentile = 0.5;
  layout::process_model m1{layout::square_die(to.die_side_um), c};
  const auto r_mean = run_statistical_insertion(t, m1, opt_mean);

  auto opt_yield = base_options(timing::standard_library());
  opt_yield.selection_percentile = 0.05;
  layout::process_model m2{layout::square_die(to.die_side_um), c};
  const auto r_yield = run_statistical_insertion(t, m2, opt_yield);

  ASSERT_TRUE(r_mean.ok());
  ASSERT_TRUE(r_yield.ok());
  const double q_mean = stats::percentile(r_mean.root_rat, m1.space(), 0.05);
  const double q_yield = stats::percentile(r_yield.root_rat, m2.space(), 0.05);
  EXPECT_GE(q_yield, q_mean - 1e-6);
  EXPECT_LE(r_yield.num_buffers, r_mean.num_buffers + 2);
}

TEST(StatisticalDp, SelectionPercentileValidated) {
  const auto t = tree::make_chain({});
  auto model = make_model(t, layout::wid_mode());
  auto options = base_options(timing::standard_library());
  options.selection_percentile = 0.0;
  EXPECT_THROW(run_statistical_insertion(t, model, options),
               std::invalid_argument);
}

TEST(StatisticalDp, RootPercentileValidated) {
  const auto t = tree::make_chain({});
  auto model = make_model(t, layout::wid_mode());
  auto options = base_options(timing::standard_library());
  options.root_percentile = 0.0;
  EXPECT_THROW(run_statistical_insertion(t, model, options),
               std::invalid_argument);
  options.root_percentile = 1.0;
  EXPECT_THROW(run_statistical_insertion(t, model, options),
               std::invalid_argument);
}

TEST(StatisticalDp, EmptyLibraryRejected) {
  const auto t = tree::make_chain({});
  auto model = make_model(t, layout::wid_mode());
  stat_options o;
  EXPECT_THROW(run_statistical_insertion(t, model, o), std::invalid_argument);
}

TEST(StatisticalDp, VariationAwareRunBeatsNominalDesignAtYield) {
  // The WID optimizer should produce a 5th-percentile RAT at least as good as
  // the nominal design evaluated under the same variation -- on trees where
  // buffering decisions matter.
  tree::random_tree_options to;
  to.num_sinks = 60;
  to.die_side_um = 8000.0;
  to.seed = 12;
  to.sink_cap_min_pf = 0.03;
  to.sink_cap_max_pf = 0.09;
  const auto t = tree::make_random_tree(to);
  auto model = make_model(t, layout::wid_mode());
  const auto wid = run_statistical_insertion(
      t, model, base_options(timing::standard_library()));
  ASSERT_TRUE(wid.ok());
  const double wid_q05 =
      stats::percentile(wid.root_rat, model.space(), 0.05);
  EXPECT_GT(wid_q05, -1e18);
}

TEST(StatisticalDp, PruningKindNames) {
  EXPECT_STREQ(to_string(pruning_kind::two_param), "2P");
  EXPECT_STREQ(to_string(pruning_kind::four_param), "4P");
  EXPECT_STREQ(to_string(pruning_kind::corner), "1P");
}

}  // namespace
}  // namespace vabi::core
