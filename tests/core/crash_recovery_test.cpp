// Crash matrix for journaled batch solving: fork a child that solves a
// journaled batch, SIGKILL it at randomized points in its run, then resume
// from whatever journal the corpse left behind and require the combined
// results to hash-equal a run that was never killed. SIGKILL cannot be
// caught, so anything the child managed to checkpoint is exactly what a real
// OOM-kill or preemption leaves: possibly nothing, possibly a torn tail,
// never an excuse for wrong results.
//
// Environment knobs (both optional, used by CI):
//   VABI_KILL_POINTS   number of kill points in the SIGKILL matrix
//                      (default 6; CI runs >= 20)
//   VABI_JOURNAL_DIR   directory for journal files; on a failed expectation
//                      the offending journal is *kept* there for upload as a
//                      CI artifact instead of being deleted.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "batch_hash_test_util.hpp"
#include "core/journal.hpp"
#include "core/parallel.hpp"
#include "testing/fault_injection.hpp"
#include "timing/buffer_library.hpp"

namespace vabi::core {
namespace {

using test_util::hash_outcomes;

constexpr std::uint64_t k_batch_seed = 21;

std::vector<batch_job> crash_jobs() {
  std::vector<batch_job> jobs(10);
  for (auto& job : jobs) {
    tree::random_tree_options g;
    g.num_sinks = 60;
    job.generate = g;
    job.options.library = timing::standard_library();
  }
  return jobs;
}

std::string journal_dir() {
  if (const char* dir = std::getenv("VABI_JOURNAL_DIR")) {
    std::string d{dir};
    if (!d.empty() && d.back() != '/') d += '/';
    return d;
  }
  return ::testing::TempDir();
}

std::size_t kill_points() {
  if (const char* env = std::getenv("VABI_KILL_POINTS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 6;
}

/// Journal path that survives test failure for CI artifact upload.
struct crash_journal {
  std::string path;
  explicit crash_journal(const std::string& name)
      : path(journal_dir() + "crash_" + name + ".vjl") {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  ~crash_journal() {
    if (::testing::Test::HasFailure()) {
      std::cerr << "[crash_recovery] keeping journal for inspection: " << path
                << "\n";
      return;
    }
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
};

/// The uninterrupted reference: solved once, serially, no journal.
std::uint64_t reference_hash() {
  static const std::uint64_t hash = [] {
    batch_solver::config cfg;
    cfg.num_threads = 1;
    cfg.batch_seed = k_batch_seed;
    batch_solver solver{cfg};
    return hash_outcomes(solver.solve_outcomes(crash_jobs()));
  }();
  return hash;
}

/// Child body: journal the batch with per-job checkpoints, then _Exit.
/// Runs in a forked process -- no gtest, no return to the test body.
[[noreturn]] void child_solve(const std::string& path, std::size_t threads,
                              const char* fault_spec) {
  if (fault_spec != nullptr) testing::arm(fault_spec);
  {
    batch_solver::config cfg;
    cfg.num_threads = threads;
    cfg.batch_seed = k_batch_seed;
    batch_solver solver{cfg};
    batch_journal_options jopts;
    jopts.path = path;
    jopts.checkpoint_every_jobs = 1;
    auto out = solver.solve_journaled(crash_jobs(), jopts);
    if (!out.ok()) std::_Exit(3);
  }
  std::_Exit(0);
}

/// Resumes from whatever `path` holds and hashes the full batch. Asserts the
/// resume itself succeeds; verify_restored re-solves every restored job and
/// demands bit-identity on top of the hash comparison below.
std::uint64_t resume_hash(const std::string& path, std::size_t threads,
                          std::size_t* restored = nullptr) {
  batch_solver::config cfg;
  cfg.num_threads = threads;
  cfg.batch_seed = k_batch_seed;
  batch_solver solver{cfg};
  batch_journal_options jopts;
  jopts.path = path;
  jopts.resume = true;
  jopts.verify_restored = true;
  auto out = solver.solve_journaled(crash_jobs(), jopts);
  EXPECT_TRUE(out.ok()) << out.error().message();
  if (!out.ok()) return 0;
  if (restored != nullptr) *restored = out->restored;
  return hash_outcomes(out->slots);
}

/// Forks, runs child_solve, kills the child after `delay`, reaps it.
/// The parent must be single-threaded at the fork (every batch_solver here
/// is scoped, so its pool threads are joined before this is called).
void fork_and_kill(const std::string& path, std::chrono::microseconds delay,
                   const char* fault_spec = nullptr) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    child_solve(path, /*threads=*/2, fault_spec);
  }
  if (delay.count() >= 0) {
    std::this_thread::sleep_for(delay);
    ::kill(pid, SIGKILL);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  if (delay.count() < 0) {
    // Deterministic crash_after_job children _Exit(42) on their own.
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 42);
  }
}

/// Wall time of one uninterrupted journaled run, used to spread kill points
/// across the child's actual lifetime.
double journaled_run_seconds(const std::string& path) {
  const auto t0 = std::chrono::steady_clock::now();
  {
    batch_solver::config cfg;
    cfg.num_threads = 2;
    cfg.batch_seed = k_batch_seed;
    batch_solver solver{cfg};
    batch_journal_options jopts;
    jopts.path = path;
    jopts.checkpoint_every_jobs = 1;
    auto out = solver.solve_journaled(crash_jobs(), jopts);
    EXPECT_TRUE(out.ok());
  }
  std::remove(path.c_str());
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(CrashRecovery, SigkillAtAnyPointResumesBitIdentically) {
  const std::uint64_t want = reference_hash();
  crash_journal cj{"sigkill_matrix"};
  const double full_seconds = journaled_run_seconds(cj.path);
  const std::size_t points = kill_points();

  for (std::size_t k = 0; k < points; ++k) {
    SCOPED_TRACE("kill point " + std::to_string(k) + "/" +
                 std::to_string(points));
    std::remove(cj.path.c_str());
    std::remove((cj.path + ".tmp").c_str());
    // Spread the kill across [0, ~120%] of the measured runtime: before the
    // first checkpoint, mid-run, and after completion are all fair game.
    const double frac =
        1.2 * static_cast<double>(k) / static_cast<double>(points);
    const auto delay = std::chrono::microseconds(
        static_cast<long>(frac * full_seconds * 1e6));
    fork_and_kill(cj.path, delay);

    std::size_t restored = 0;
    const std::uint64_t got = resume_hash(cj.path, /*threads=*/2, &restored);
    EXPECT_EQ(got, want) << "resume after SIGKILL diverged (restored "
                         << restored << " jobs)";
    if (HasFailure()) break;  // keep this kill point's journal
  }
}

TEST(CrashRecovery, DeterministicCrashAfterEveryJobIndex) {
  // The SIGKILL matrix is timing-dependent by design; this variant pins the
  // crash to an exact commit boundary: the process _Exits the instant job k
  // lands in the journal, for every k. No final flush, no destructors --
  // the checkpointed prefix is all that survives, and it must be enough.
  const std::uint64_t want = reference_hash();
  for (std::size_t k = 0; k < 10; k += 3) {
    SCOPED_TRACE("crash after append " + std::to_string(k));
    crash_journal cj{"crash_after_" + std::to_string(k)};
    const std::string spec =
        "crash_after_job:after=" + std::to_string(k);
    fork_and_kill(cj.path, std::chrono::microseconds(-1), spec.c_str());

    const std::uint64_t got = resume_hash(cj.path, /*threads=*/2);
    EXPECT_EQ(got, want);
  }
}

TEST(CrashRecovery, ResumeThreadCountIsFreeAfterACrash) {
  // Crash under 2 threads, resume under 1, 2 and 8: the journal + derived
  // per-job seeds make the resumed batch thread-count-invariant.
  const std::uint64_t want = reference_hash();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("resume threads " + std::to_string(threads));
    crash_journal cj{"threads_" + std::to_string(threads)};
    fork_and_kill(cj.path, std::chrono::microseconds(-1),
                  "crash_after_job:after=4");
    EXPECT_EQ(resume_hash(cj.path, threads), want);
  }
}

TEST(CrashRecovery, ResumeAfterCrashBeforeFirstCheckpointSolvesEverything) {
  // Kill immediately: with high probability not even the header landed. A
  // missing or empty journal is a valid journal; resume must just solve the
  // whole batch.
  const std::uint64_t want = reference_hash();
  crash_journal cj{"instant_kill"};
  fork_and_kill(cj.path, std::chrono::microseconds(0));
  EXPECT_EQ(resume_hash(cj.path, /*threads=*/2), want);
}

}  // namespace
}  // namespace vabi::core
