// Differential suite for the tiled dominance engine (core/pruning.cpp).
//
// The contract under test (pruning.hpp "Sweep-implementation policy"): the
// tiled sweep -- SoA candidate planes + batched one-vs-many moment kernels +
// the batched interval prefilter -- produces *bit-identical* results to the
// seed's pairwise sweep: the same surviving candidates in the same order with
// the same form bits, the same candidates_pruned, on every reachable ISA and
// in both form representations. Which sweep ran may only move organization
// counters (tiled_prunes / tile_prefilter_hits / pairs_batched vs
// dominance_prefilter_hits).
//
// Layers:
//   1. kernel: the one-vs-many entries match their one-plane counterparts
//      row for row, bit for bit, on every reachable ISA; prefilter verdicts
//      implement the exact scalar branch order (NaN falls through to 2).
//   2. prune: randomized lists through prune_two_param / prune_four_param
//      under forced pairwise vs forced tiled.
//   3. engine: full serial + parallel solves (threads x li_shi) under both
//      modes compare root RAT bits, assignments and work counters.
#include "core/pruning.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "core/parallel.hpp"
#include "core/statistical_dp.hpp"
#include "layout/process_model.hpp"
#include "stats/candidate_plane.hpp"
#include "stats/kernels.hpp"
#include "stats/linear_form.hpp"
#include "stats/rng.hpp"
#include "stats/term_pool.hpp"
#include "stats/variation_space.hpp"
#include "timing/buffer_library.hpp"
#include "tree/benchmarks.hpp"

namespace vabi::core {
namespace {

namespace kernels = stats::kernels;

// ---------------------------------------------------------------------------
// Guards (mirror tests/stats/kernels_test.cpp).
// ---------------------------------------------------------------------------

struct isa_guard {
  explicit isa_guard(kernels::kernel_isa isa) {
    kernels::set_forced_isa(kernels::to_string(isa));
  }
  ~isa_guard() { kernels::set_forced_isa(nullptr); }
};

struct dense_guard {
  explicit dense_guard(int mode) { stats::set_force_dense(mode); }
  ~dense_guard() { stats::reset_force_dense_from_env(); }
};

/// Forces one prune implementation for the scope; restores the
/// VABI_FORCE_PRUNE environment default on exit.
struct prune_guard {
  explicit prune_guard(int mode) { set_force_prune(mode); }
  ~prune_guard() { reset_force_prune_from_env(); }
};

std::vector<kernels::kernel_isa> reachable_isas() {
  std::vector<kernels::kernel_isa> out{kernels::kernel_isa::scalar};
  for (const auto isa :
       {kernels::kernel_isa::sse2, kernels::kernel_isa::avx2,
        kernels::kernel_isa::neon}) {
    if (kernels::isa_available(isa)) out.push_back(isa);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Random fixtures.
// ---------------------------------------------------------------------------

stats::variation_space make_space(std::size_t num_sources,
                                  std::uint64_t seed) {
  stats::variation_space space;
  auto rng = stats::make_rng(seed * 977 + 13);
  std::uniform_real_distribution<double> sigma(0.25, 2.0);
  for (std::size_t i = 0; i < num_sources; ++i) {
    space.add_source(stats::source_kind::random_device, sigma(rng));
  }
  return space;
}

stats::linear_form random_form(std::mt19937_64& rng, std::size_t num_sources,
                               double density, double mean_lo,
                               double mean_hi) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> coeff(-0.05, 0.05);
  std::uniform_real_distribution<double> mean(mean_lo, mean_hi);
  stats::linear_form f{mean(rng)};
  for (std::size_t id = 0; id < num_sources; ++id) {
    if (unit(rng) >= density) continue;
    double c = coeff(rng);
    if (unit(rng) < 0.05) c = 0.0;  // present-with-zero vs absent corner
    f.add_term(static_cast<stats::source_id>(id), c);
  }
  return f;
}

/// A candidate list with enough mean overlap that both sweeps prune some
/// candidates and keep others at p > 0.5.
std::vector<stat_candidate> random_list(std::size_t k,
                                        std::size_t num_sources,
                                        std::uint64_t seed) {
  auto rng = stats::make_rng(seed);
  std::vector<stat_candidate> list;
  list.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    list.push_back({random_form(rng, num_sources, 0.6, 0.0, 2.0),
                    random_form(rng, num_sources, 0.6, -100.0, 100.0),
                    nullptr});
  }
  // A few identical-form ties (shared load / duplicated candidate): the tie
  // convention is the branchiest corner of both sweeps.
  if (k >= 8) {
    list[3].load = list[2].load;
    list[5] = {list[4].load, list[4].rat, nullptr};
  }
  return list;
}

/// Canonical (id, coefficient-bits) list of a form, representation-agnostic.
struct form_bits {
  std::uint64_t nominal = 0;
  std::vector<std::pair<stats::source_id, std::uint64_t>> terms;

  bool operator==(const form_bits&) const = default;
};

form_bits bits_of(const stats::linear_form& f) {
  stats::linear_form c = f;
  c.own_terms();
  form_bits out;
  out.nominal = std::bit_cast<std::uint64_t>(c.mean());
  for (const auto& t : c.terms()) {
    out.terms.emplace_back(t.id, std::bit_cast<std::uint64_t>(t.coeff));
  }
  return out;
}

void expect_lists_bitwise_equal(const std::vector<stat_candidate>& a,
                                const std::vector<stat_candidate>& b,
                                const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(bits_of(a[i].load), bits_of(b[i].load)) << what << " load " << i;
    EXPECT_EQ(bits_of(a[i].rat), bits_of(b[i].rat)) << what << " rat " << i;
  }
}

// ---------------------------------------------------------------------------
// 1. Kernel layer.
// ---------------------------------------------------------------------------

TEST(TiledKernels, BatchedReductionsMatchOnePlaneBitwise) {
  const std::size_t num_sources = 100;  // not a multiple of 4: tail columns
  const auto space = make_space(num_sources, 31);
  auto rng = stats::make_rng(77);

  stats::candidate_plane plane;
  plane.reset(num_sources);
  const std::size_t m = 37;  // not a multiple of 4: remainder rows
  for (std::size_t i = 0; i < m; ++i) {
    plane.add_row(random_form(rng, num_sources, 0.5, -1.0, 1.0));
  }
  stats::candidate_plane xp;
  xp.reset(num_sources);
  xp.add_row(random_form(rng, num_sources, 0.5, -1.0, 1.0));

  std::vector<const double*> rows(m);
  for (std::size_t i = 0; i < m; ++i) rows[i] = plane.row(i);
  const double* s2 = space.sigma2_data();

  for (const auto isa : reachable_isas()) {
    isa_guard guard{isa};
    const auto& kt = kernels::active();
    std::vector<double> out(m);

    kt.variance_rows(rows.data(), m, s2, num_sources, out.data());
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[j]),
                std::bit_cast<std::uint64_t>(
                    kt.variance_plane(rows[j], s2, num_sources)))
          << "variance " << kernels::to_string(isa) << " row " << j;
    }

    kt.covariance_row_tile(xp.row(0), rows.data(), m, s2, num_sources,
                           out.data());
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[j]),
                std::bit_cast<std::uint64_t>(kt.covariance_planes(
                    xp.row(0), rows[j], s2, num_sources)))
          << "covariance " << kernels::to_string(isa) << " row " << j;
    }

    kt.sigma_diff_sq_row_tile(xp.row(0), rows.data(), m, s2, num_sources,
                              out.data());
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[j]),
                std::bit_cast<std::uint64_t>(kt.sigma_diff_sq_planes(
                    xp.row(0), rows[j], s2, num_sources)))
          << "sigma_diff_sq " << kernels::to_string(isa) << " row " << j;
    }
  }
}

TEST(TiledKernels, BatchedReductionsMatchScalarAcrossIsas) {
  const std::size_t num_sources = 67;
  const auto space = make_space(num_sources, 5);
  auto rng = stats::make_rng(6);
  stats::candidate_plane plane;
  plane.reset(num_sources);
  const std::size_t m = 19;
  for (std::size_t i = 0; i < m; ++i) {
    plane.add_row(random_form(rng, num_sources, 0.7, -1.0, 1.0));
  }
  std::vector<const double*> rows(m);
  for (std::size_t i = 0; i < m; ++i) rows[i] = plane.row(i);

  std::vector<double> ref(m);
  {
    isa_guard guard{kernels::kernel_isa::scalar};
    kernels::active().variance_rows(rows.data(), m, space.sigma2_data(),
                                    num_sources, ref.data());
  }
  for (const auto isa : reachable_isas()) {
    isa_guard guard{isa};
    std::vector<double> out(m);
    kernels::active().variance_rows(rows.data(), m, space.sigma2_data(),
                                    num_sources, out.data());
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[j]),
                std::bit_cast<std::uint64_t>(ref[j]))
          << kernels::to_string(isa) << " row " << j;
    }
  }
}

TEST(TiledKernels, PrefilterVerdictsFollowScalarBranchOrder) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // z thresholds for p ~ 0.9: z_p ~ 1.2816, pre-widened by kappa.
  const double z_hi = 1.2816 + 1e-6;
  const double z_lo = 1.2816 - 1e-6;
  const double mu_d[] = {
      10.0,   // far above z_hi * (1 + 1) -> definitely true
      -0.5,   // negative mean difference -> definitely false
      0.1,    // below z_lo * |2 - 0.25| -> definitely false
      2.56,   // between the bounds for sigmas (1, 1) -> undecided
      nan,    // NaN mean -> fails every comparison -> undecided
      1.0,    // NaN sigma -> undecided
  };
  const double sx[] = {1.0, 1.0, 2.0, 1.0, 1.0, nan};
  const double sy[] = {1.0, 1.0, 0.25, 1.0, 1.0, 1.0};
  const std::uint8_t want[] = {1, 0, 0, 2, 2, 2};
  for (const auto isa : reachable_isas()) {
    isa_guard guard{isa};
    std::uint8_t verdict[6] = {9, 9, 9, 9, 9, 9};
    kernels::active().prefilter_row_tile(mu_d, sx, sy, 6, z_hi, z_lo, verdict);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(verdict[j], want[j]) << kernels::to_string(isa) << " " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Prune layer: forced pairwise vs forced tiled.
// ---------------------------------------------------------------------------

TEST(TiledPolicy, ThresholdsAndOverrides) {
  {
    prune_guard guard{0};  // adaptive
    EXPECT_TRUE(use_tiled_prune(32, 16));
    EXPECT_FALSE(use_tiled_prune(31, 16));
    EXPECT_FALSE(use_tiled_prune(32, 15));
  }
  {
    prune_guard guard{1};
    EXPECT_TRUE(use_tiled_prune(2, 1));
  }
  {
    prune_guard guard{-1};
    EXPECT_FALSE(use_tiled_prune(1000, 1000));
  }
}

class TiledDifferential : public ::testing::TestWithParam<double> {};

TEST_P(TiledDifferential, TwoParamMatchesPairwiseBitwise) {
  const double p = GetParam();
  two_param_rule rule;
  rule.p_load = p;
  rule.p_rat = p;
  for (const std::size_t num_sources : {24u, 64u}) {
    const auto space = make_space(num_sources, num_sources);
    for (const std::size_t k : {40u, 160u}) {
      const auto base = random_list(k, num_sources, k * 31 + num_sources);
      for (const auto isa : reachable_isas()) {
        isa_guard ig{isa};
        auto a = base;
        auto b = base;
        dp_stats sa, sb;
        {
          prune_guard guard{-1};
          prune_two_param(rule, a, space, sa);
        }
        {
          prune_guard guard{1};
          prune_two_param(rule, b, space, sb);
        }
        EXPECT_EQ(sa.tiled_prunes, 0u);
        EXPECT_EQ(sb.tiled_prunes, 1u);
        EXPECT_GT(sb.pairs_batched, 0u);
        EXPECT_EQ(sa.candidates_pruned, sb.candidates_pruned)
            << "p=" << p << " k=" << k << " sources=" << num_sources;
        expect_lists_bitwise_equal(a, b, kernels::to_string(isa));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Confidence, TiledDifferential,
                         ::testing::Values(0.6, 0.8, 0.95),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(TiledDifferentialDense, TwoParamMatchesAcrossRepresentations) {
  // Densified candidates (pooled ops under force-dense) must gather and
  // prune to the same bits as their sparse twins.
  two_param_rule rule;
  rule.p_load = 0.8;
  rule.p_rat = 0.8;
  const std::size_t num_sources = 48;
  const auto space = make_space(num_sources, 3);
  const auto base = random_list(96, num_sources, 11);

  stats::term_pool pool;
  std::vector<stat_candidate> dense_base;
  {
    dense_guard dg{1};
    for (const auto& c : base) {
      stat_candidate d;
      d.load = stats::pooled_add(c.load, stats::linear_form{0.0}, pool);
      d.rat = stats::pooled_add(c.rat, stats::linear_form{0.0}, pool);
      dense_base.push_back(std::move(d));
    }
  }
  ASSERT_TRUE(dense_base.front().load.is_dense());

  auto sparse_pair = base;
  auto sparse_tile = base;
  auto dense_tile = std::move(dense_base);
  dp_stats s1, s2, s3;
  {
    prune_guard guard{-1};
    prune_two_param(rule, sparse_pair, space, s1);
  }
  {
    prune_guard guard{1};
    prune_two_param(rule, sparse_tile, space, s2);
    prune_two_param(rule, dense_tile, space, s3);
  }
  EXPECT_EQ(s1.candidates_pruned, s2.candidates_pruned);
  EXPECT_EQ(s1.candidates_pruned, s3.candidates_pruned);
  expect_lists_bitwise_equal(sparse_pair, sparse_tile, "sparse tiled");
  expect_lists_bitwise_equal(sparse_pair, dense_tile, "dense tiled");
}

TEST(TiledDifferentialFourParam, MatchesPairwiseBitwise) {
  const four_param_rule rule;
  for (const std::size_t num_sources : {24u, 64u}) {
    const auto space = make_space(num_sources, num_sources + 1);
    const auto base = random_list(120, num_sources, num_sources * 7);
    for (const auto isa : reachable_isas()) {
      isa_guard ig{isa};
      auto a = base;
      auto b = base;
      dp_stats sa, sb;
      {
        prune_guard guard{-1};
        prune_four_param(rule, a, space, sa);
      }
      {
        prune_guard guard{1};
        prune_four_param(rule, b, space, sb);
      }
      EXPECT_EQ(sa.tiled_prunes, 0u);
      EXPECT_EQ(sb.tiled_prunes, 1u);
      EXPECT_EQ(sa.candidates_pruned, sb.candidates_pruned);
      expect_lists_bitwise_equal(a, b, kernels::to_string(isa));
    }
  }
}

TEST(TiledDifferential, MeanRuleNeverTiles) {
  const two_param_rule rule;  // p = 0.5
  ASSERT_TRUE(rule.is_mean_rule());
  const auto space = make_space(32, 1);
  auto list = random_list(128, 32, 17);
  dp_stats s;
  prune_guard guard{1};  // even under forced tiled
  prune_two_param(rule, list, space, s);
  EXPECT_EQ(s.tiled_prunes, 0u);
  EXPECT_EQ(s.pairs_batched, 0u);
}

TEST(TiledDifferential, SurvivorsAreMutuallyNonDominated) {
  // Property check on the tiled survivors directly (not just equality with
  // pairwise). The 2P sweep at p > 0.5 is the paper's *window-local*
  // linearization -- survivors farther than sweep_window apart may still
  // dominate -- so the 2P invariant is: no survivor is dominated by any of
  // the `window` survivors kept immediately before it. The 4P prune is the
  // full O(n^2) pass, so there the global property holds.
  two_param_rule rule2;
  rule2.p_load = 0.8;
  rule2.p_rat = 0.8;
  const four_param_rule rule4;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto space = make_space(32, seed);
    prune_guard guard{1};
    {
      auto list = random_list(80, 32, seed * 101);
      dp_stats s;
      prune_two_param(rule2, list, space, s);
      EXPECT_FALSE(list.empty());
      const std::size_t window = rule2.sweep_window;
      for (std::size_t i = 0; i < list.size(); ++i) {
        for (std::size_t k = 1; k <= window && k <= i; ++k) {
          EXPECT_FALSE(dominates(rule2, list[i - k], list[i], space))
              << "2P seed " << seed << " pair (" << i - k << ", " << i << ")";
        }
      }
    }
    {
      auto list = random_list(80, 32, seed * 103);
      dp_stats s;
      prune_four_param(rule4, list, space, s);
      EXPECT_FALSE(list.empty());
      EXPECT_TRUE(is_mutually_non_dominated(rule4, list, space))
          << "4P seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// 4P stddev memo (sigma_diff_cache::get_stddev).
// ---------------------------------------------------------------------------

class StddevCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { space_ = make_space(16, 9); }
  stats::variation_space space_;
};

TEST_F(StddevCacheTest, CachedStddevIsExact) {
  auto rng = stats::make_rng(21);
  const auto f = random_form(rng, 16, 0.7, -1.0, 1.0);
  sigma_diff_cache cache;
  const double got = cache.get_stddev(f, space_);
  const double again = cache.get_stddev(f, space_);
  const double direct = f.stddev(space_);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
            std::bit_cast<std::uint64_t>(direct));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(again),
            std::bit_cast<std::uint64_t>(direct));
}

TEST_F(StddevCacheTest, CachedFourParamDominatesMatchesUncached) {
  const four_param_rule rule;
  auto rng = stats::make_rng(23);
  std::vector<stat_candidate> cands;
  for (int i = 0; i < 16; ++i) {
    cands.push_back({random_form(rng, 16, 0.7, 0.0, 1.0),
                     random_form(rng, 16, 0.7, -50.0, 50.0), nullptr});
  }
  cands.push_back({stats::linear_form{0.5}, stats::linear_form{0.0},
                   nullptr});        // zero-sigma corner
  cands.push_back(cands.front());    // identical-form tie corner
  sigma_diff_cache cache;
  for (const auto& a : cands) {
    for (const auto& b : cands) {
      EXPECT_EQ(dominates(rule, a, b, space_, cache),
                dominates(rule, a, b, space_));
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Engine layer: full solves under both modes.
// ---------------------------------------------------------------------------

struct engine_case {
  const char* name;
  pruning_kind rule;
  double pbar;
  std::size_t threads;  ///< 0 = serial engine
  li_shi_mode li_shi;
};

class TiledEngineDifferential : public ::testing::TestWithParam<engine_case> {
};

TEST_P(TiledEngineDifferential, SolveIsBitIdenticalAcrossPruneModes) {
  const engine_case& ec = GetParam();

  tree::benchmark_spec spec;
  spec.name = "tiled_diff";
  spec.sinks = 32;
  spec.die_side_um = 2500.0;
  spec.seed = 917;
  const auto net = tree::build_benchmark(spec);

  layout::process_model_config pc;
  pc.mode = layout::wid_mode();
  pc.spatial.profile = layout::spatial_profile::heterogeneous;

  stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  o.rule = ec.rule;
  o.root_percentile = 0.05;
  o.selection_percentile = 0.05;
  o.two_param.p_load = ec.pbar;
  o.two_param.p_rat = ec.pbar;
  o.li_shi = ec.li_shi;

  const auto solve = [&](int mode) {
    prune_guard guard{mode};
    layout::process_model model{layout::square_die(spec.die_side_um), pc};
    if (ec.threads == 0) return run_statistical_insertion(net, model, o);
    thread_pool pool{ec.threads};
    return run_parallel_insertion(net, model, o, pool);
  };

  const auto pairwise = solve(-1);
  const auto tiled = solve(1);
  ASSERT_TRUE(pairwise.ok()) << pairwise.stats.abort_reason;
  ASSERT_TRUE(tiled.ok()) << tiled.stats.abort_reason;

  EXPECT_EQ(pairwise.num_buffers, tiled.num_buffers);
  EXPECT_EQ(pairwise.stats.candidates_created, tiled.stats.candidates_created);
  EXPECT_EQ(pairwise.stats.candidates_pruned, tiled.stats.candidates_pruned);
  EXPECT_EQ(pairwise.stats.merge_pairs, tiled.stats.merge_pairs);
  EXPECT_EQ(bits_of(pairwise.root_rat), bits_of(tiled.root_rat));
  for (tree::node_id n = 0; n < net.num_nodes(); ++n) {
    ASSERT_EQ(pairwise.assignment.has_buffer(n), tiled.assignment.has_buffer(n));
    if (pairwise.assignment.has_buffer(n)) {
      EXPECT_EQ(pairwise.assignment.buffer(n), tiled.assignment.buffer(n));
    }
  }
  EXPECT_EQ(pairwise.stats.tiled_prunes, 0u);
}

constexpr engine_case kEngineCases[] = {
    {"serial_2p_p90", pruning_kind::two_param, 0.9, 0, li_shi_mode::never},
    {"serial_2p_p90_li_shi", pruning_kind::two_param, 0.9, 0,
     li_shi_mode::always},
    {"serial_4p", pruning_kind::four_param, 0.5, 0, li_shi_mode::never},
    {"t1_2p_p90", pruning_kind::two_param, 0.9, 1, li_shi_mode::never},
    {"t2_2p_p90", pruning_kind::two_param, 0.9, 2, li_shi_mode::never},
    {"t8_2p_p90", pruning_kind::two_param, 0.9, 8, li_shi_mode::never},
    {"t8_2p_p90_li_shi", pruning_kind::two_param, 0.9, 8,
     li_shi_mode::always},
    {"t2_4p", pruning_kind::four_param, 0.5, 2, li_shi_mode::never},
    {"t8_4p", pruning_kind::four_param, 0.5, 8, li_shi_mode::never},
};

INSTANTIATE_TEST_SUITE_P(RulesThreadsLiShi, TiledEngineDifferential,
                         ::testing::ValuesIn(kEngineCases),
                         [](const ::testing::TestParamInfo<engine_case>& i) {
                           return std::string(i.param.name);
                         });

}  // namespace
}  // namespace vabi::core
