// ECO session (core/slab_cache.hpp) differential tests: warm incremental
// re-solves must be bit-identical to cache-bypassing cold solves across the
// 2P / 4P / corner engines, serial and parallel drivers, and li_shi modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/parallel.hpp"
#include "core/slab_cache.hpp"
#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

layout::process_model make_wid_model(const tree::routing_tree& t) {
  layout::process_model_config c;
  c.mode = layout::wid_mode();
  layout::bbox die = t.bounding_box();
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  return layout::process_model{die, c};
}

stat_options base_options(pruning_kind rule, li_shi_mode ls) {
  stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  o.rule = rule;
  o.li_shi = ls;
  o.max_candidates = 4'000'000;  // keeps 4P bounded on its small tree
  return o;
}

tree::routing_tree make_tree(pruning_kind rule, std::uint64_t seed) {
  tree::random_tree_options to;
  // 4P is the O(N^2)-prune baseline; keep its tree small, the others real.
  to.num_sinks = rule == pruning_kind::four_param ? 10 : 150;
  to.die_side_um = 8000.0;
  to.seed = seed;
  return tree::make_random_tree(to);
}

void expect_same_result(const stat_result& a, const stat_result& b) {
  EXPECT_TRUE(a.root_rat == b.root_rat);
  EXPECT_EQ(form_hash(a.root_rat), form_hash(b.root_rat));
  EXPECT_EQ(a.num_buffers, b.num_buffers);
  ASSERT_EQ(a.assignment.num_nodes(), b.assignment.num_nodes());
  for (tree::node_id n = 0; n < a.assignment.num_nodes(); ++n) {
    ASSERT_EQ(a.assignment.has_buffer(n), b.assignment.has_buffer(n)) << n;
    if (a.assignment.has_buffer(n)) {
      EXPECT_EQ(a.assignment.buffer(n), b.assignment.buffer(n)) << n;
    }
  }
}

// Applies a small ECO: move one sink and retarget another's RAT.
void apply_eco(tree::routing_tree& t) {
  const auto sinks = t.sinks();
  ASSERT_GE(sinks.size(), 2u);
  const tree::node_id a = sinks[sinks.size() / 3];
  const tree::node_id b = sinks[(2 * sinks.size()) / 3];
  const layout::point p = t.node(a).location;
  t.apply_edit(tree::tree_edit::move_sink(a, {p.x + 150.0, p.y - 90.0}));
  t.apply_edit(tree::tree_edit::retarget_rat(b, t.node(b).sink_rat_ps - 37.0));
}

struct eco_case {
  pruning_kind rule;
  int threads;  // 0 = serial session solve
  li_shi_mode li_shi;
};

std::ostream& operator<<(std::ostream& os, const eco_case& c) {
  return os << to_string(c.rule) << "/t" << c.threads << "/li_shi="
            << static_cast<int>(c.li_shi);
}

class EcoDifferential : public ::testing::TestWithParam<eco_case> {};

TEST_P(EcoDifferential, WarmSolveAfterEditIsBitIdenticalToCold) {
  const eco_case c = GetParam();
  auto t = make_tree(c.rule, 501 + static_cast<std::uint64_t>(c.threads));
  auto model = make_wid_model(t);
  const auto options = base_options(c.rule, c.li_shi);

  solve_session session(model);
  std::unique_ptr<thread_pool> pool;
  if (c.threads > 0) pool = std::make_unique<thread_pool>(c.threads);
  const auto run = [&](const tree::routing_tree& tr) {
    return c.threads > 0 ? session.solve_parallel(tr, options, *pool)
                         : session.solve(tr, options);
  };

  const auto first = run(t);
  ASSERT_TRUE(first.ok()) << to_string(first.code());
  EXPECT_EQ(first.value().stats.cache_hits, 0u);
  EXPECT_GT(session.cached_nodes(), 0u);

  apply_eco(t);

  const auto warm = run(t);
  ASSERT_TRUE(warm.ok()) << to_string(warm.code());
  EXPECT_GT(warm.value().stats.cache_hits, 0u);
  EXPECT_GT(warm.value().stats.nodes_reused, 0u);
  EXPECT_LT(warm.value().stats.cache_misses, t.num_nodes());

  const auto cold = session.solve_cold(t, options);
  ASSERT_TRUE(cold.ok()) << to_string(cold.code());
  EXPECT_EQ(cold.value().stats.cache_hits, 0u);
  expect_same_result(warm.value(), cold.value());
}

INSTANTIATE_TEST_SUITE_P(
    RulesThreadsLiShi, EcoDifferential,
    ::testing::Values(
        eco_case{pruning_kind::two_param, 0, li_shi_mode::never},
        eco_case{pruning_kind::two_param, 0, li_shi_mode::always},
        eco_case{pruning_kind::two_param, 1, li_shi_mode::always},
        eco_case{pruning_kind::two_param, 2, li_shi_mode::never},
        eco_case{pruning_kind::two_param, 2, li_shi_mode::always},
        eco_case{pruning_kind::two_param, 8, li_shi_mode::always},
        eco_case{pruning_kind::corner, 0, li_shi_mode::automatic},
        eco_case{pruning_kind::corner, 2, li_shi_mode::automatic},
        eco_case{pruning_kind::corner, 8, li_shi_mode::automatic},
        eco_case{pruning_kind::four_param, 0, li_shi_mode::automatic},
        eco_case{pruning_kind::four_param, 2, li_shi_mode::automatic}));

TEST(EcoSession, FirstSolveMatchesOneShotEngine) {
  const auto t = make_tree(pruning_kind::two_param, 91);
  const auto options = base_options(pruning_kind::two_param,
                                    li_shi_mode::automatic);

  auto m1 = make_wid_model(t);
  solve_session session(m1);
  const auto s = session.solve(t, options);
  ASSERT_TRUE(s.ok());

  auto m2 = make_wid_model(t);
  const auto one_shot = run_statistical_insertion(t, m2, options);
  ASSERT_TRUE(one_shot.ok());
  expect_same_result(s.value(), one_shot);
  // One-shot entry points never touch a cache.
  EXPECT_EQ(one_shot.stats.cache_hits, 0u);
  EXPECT_EQ(one_shot.stats.cache_misses, 0u);
  EXPECT_EQ(one_shot.stats.nodes_reused, 0u);
}

TEST(EcoSession, UneditedResolveIsAFullHit) {
  const auto t = make_tree(pruning_kind::two_param, 92);
  auto model = make_wid_model(t);
  solve_session session(model);
  const auto options = base_options(pruning_kind::two_param,
                                    li_shi_mode::automatic);

  const auto first = session.solve(t, options);
  ASSERT_TRUE(first.ok());
  const auto again = session.solve(t, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().stats.cache_misses, 0u);
  EXPECT_GT(again.value().stats.cache_hits, 0u);
  // A full hit adopts at the root, covering every node.
  EXPECT_EQ(again.value().stats.nodes_reused, t.num_nodes());
  EXPECT_EQ(again.value().stats.cache_hits, 1u);
  expect_same_result(first.value(), again.value());
}

TEST(EcoSession, OptionChangeFlushesTheCache) {
  const auto t = make_tree(pruning_kind::two_param, 93);
  auto model = make_wid_model(t);
  solve_session session(model);
  auto options = base_options(pruning_kind::two_param, li_shi_mode::automatic);

  ASSERT_TRUE(session.solve(t, options).ok());
  EXPECT_GT(session.cached_nodes(), 0u);

  options.selection_percentile = 0.05;
  const auto r = session.solve(t, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stats.cache_hits, 0u);  // fingerprint change = flush

  auto m2 = make_wid_model(t);
  const auto fresh = run_statistical_insertion(t, m2, options);
  ASSERT_TRUE(fresh.ok());
  expect_same_result(r.value(), fresh);
}

TEST(EcoSession, CancelledSolveLeavesReusableState) {
  const auto t = make_tree(pruning_kind::two_param, 94);
  auto model = make_wid_model(t);
  solve_session session(model);
  const auto options = base_options(pruning_kind::two_param,
                                    li_shi_mode::automatic);

  cancel_token cancel;
  cancel.request_stop();
  const auto aborted = session.solve(t, options, &cancel);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.code(), solve_code::cancelled);

  const auto clean = session.solve(t, options);
  ASSERT_TRUE(clean.ok());
  const auto cold = session.solve_cold(t, options);
  ASSERT_TRUE(cold.ok());
  expect_same_result(clean.value(), cold.value());
}

TEST(EcoSession, ResetDropsEverything) {
  auto t = make_tree(pruning_kind::two_param, 95);
  auto model = make_wid_model(t);
  solve_session session(model);
  const auto options = base_options(pruning_kind::two_param,
                                    li_shi_mode::automatic);
  ASSERT_TRUE(session.solve(t, options).ok());
  ASSERT_GT(session.cached_nodes(), 0u);
  session.reset();
  EXPECT_EQ(session.cached_nodes(), 0u);
  const auto r = session.solve(t, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stats.cache_hits, 0u);
}

TEST(EcoSession, ParallelWarmMatchesSerialWarm) {
  auto t = make_tree(pruning_kind::two_param, 96);
  const auto options = base_options(pruning_kind::two_param,
                                    li_shi_mode::automatic);

  auto m1 = make_wid_model(t);
  solve_session serial_session(m1);
  auto m2 = make_wid_model(t);
  solve_session parallel_session(m2);
  thread_pool pool(4);

  ASSERT_TRUE(serial_session.solve(t, options).ok());
  ASSERT_TRUE(parallel_session.solve_parallel(t, options, pool).ok());

  apply_eco(t);

  const auto ws = serial_session.solve(t, options);
  const auto wp = parallel_session.solve_parallel(t, options, pool);
  ASSERT_TRUE(ws.ok());
  ASSERT_TRUE(wp.ok());
  EXPECT_EQ(ws.value().stats.cache_hits, wp.value().stats.cache_hits);
  EXPECT_EQ(ws.value().stats.cache_misses, wp.value().stats.cache_misses);
  EXPECT_EQ(ws.value().stats.nodes_reused, wp.value().stats.nodes_reused);
  expect_same_result(ws.value(), wp.value());
}

TEST(DetSession, WarmEqualsFreshVanGinneken) {
  auto t = make_tree(pruning_kind::two_param, 97);
  det_options d;
  d.library = timing::standard_library();
  d.driver_res_ohm = 150.0;

  det_session session;
  const auto first = session.solve(t, d);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().stats.cache_hits, 0u);
  EXPECT_GT(session.cached_nodes(), 0u);

  apply_eco(t);

  const auto warm = session.solve(t, d);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm.value().stats.cache_hits, 0u);
  EXPECT_LT(warm.value().stats.cache_misses, t.num_nodes());

  const auto cold = session.solve_cold(t, d);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().stats.cache_hits, 0u);
  EXPECT_EQ(warm.value().root_rat_ps, cold.value().root_rat_ps);
  EXPECT_EQ(warm.value().num_buffers, cold.value().num_buffers);
  for (tree::node_id n = 0; n < warm.value().assignment.num_nodes(); ++n) {
    ASSERT_EQ(warm.value().assignment.has_buffer(n),
              cold.value().assignment.has_buffer(n));
    if (warm.value().assignment.has_buffer(n)) {
      EXPECT_EQ(warm.value().assignment.buffer(n),
                cold.value().assignment.buffer(n));
    }
  }

  // And against the one-shot engine, which never touches a cache.
  const auto fresh = run_van_ginneken(t, d);
  EXPECT_EQ(warm.value().root_rat_ps, fresh.root_rat_ps);
  EXPECT_EQ(fresh.stats.cache_hits, 0u);
  EXPECT_EQ(fresh.stats.cache_misses, 0u);
}

TEST(DetSession, LiShiModesAgreeWarm) {
  auto t = make_tree(pruning_kind::two_param, 98);
  det_options never_opts;
  never_opts.library = timing::standard_library();
  never_opts.li_shi = li_shi_mode::never;
  det_options always_opts = never_opts;
  always_opts.li_shi = li_shi_mode::always;

  det_session s_never;
  det_session s_always;
  ASSERT_TRUE(s_never.solve(t, never_opts).ok());
  ASSERT_TRUE(s_always.solve(t, always_opts).ok());
  apply_eco(t);
  const auto rn = s_never.solve(t, never_opts);
  const auto ra = s_always.solve(t, always_opts);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(rn.value().root_rat_ps, ra.value().root_rat_ps);
  EXPECT_EQ(rn.value().num_buffers, ra.value().num_buffers);
}

}  // namespace
}  // namespace vabi::core
