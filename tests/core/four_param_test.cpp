// Behavior of the 4P baseline engine: correctness on tiny inputs, candidate
// blow-up and cap-triggered aborts on bigger ones (Table 2's failure mode).
#include <gtest/gtest.h>

#include "core/statistical_dp.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

layout::process_model wid_model(const tree::routing_tree& t) {
  layout::process_model_config c;
  c.mode = layout::wid_mode();
  layout::bbox die = t.bounding_box();
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  return layout::process_model{die, c};
}

stat_options four_param_options() {
  stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  o.rule = pruning_kind::four_param;
  return o;
}

TEST(FourParam, CompletesOnTinyTree) {
  tree::random_tree_options to;
  to.num_sinks = 6;
  to.seed = 6;
  const auto t = tree::make_random_tree(to);
  auto model = wid_model(t);
  auto o = four_param_options();
  o.max_candidates = 5'000'000;
  const auto r = run_statistical_insertion(t, model, o);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.num_buffers, 0u);
}

TEST(FourParam, ListCapAbortsCleanly) {
  tree::random_tree_options to;
  to.num_sinks = 50;
  to.seed = 61;
  const auto t = tree::make_random_tree(to);
  auto model = wid_model(t);
  auto o = four_param_options();
  o.max_list_size = 64;
  const auto r = run_statistical_insertion(t, model, o);
  EXPECT_TRUE(r.stats.aborted);
  EXPECT_EQ(r.stats.abort_reason, "candidate list exceeded max_list_size");
}

TEST(FourParam, WallClockCapAborts) {
  tree::random_tree_options to;
  to.num_sinks = 200;
  to.seed = 62;
  const auto t = tree::make_random_tree(to);
  auto model = wid_model(t);
  auto o = four_param_options();
  o.max_wall_seconds = 1e-5;  // fires almost immediately
  const auto r = run_statistical_insertion(t, model, o);
  EXPECT_TRUE(r.stats.aborted);
}

TEST(FourParam, MergeCostQuadraticVersusTwoParamLinear) {
  // On the same mid-size tree, 4P must evaluate far more merge pairs than 2P
  // -- the O(n*m) vs O(n+m) distinction of Section 2.
  tree::random_tree_options to;
  to.num_sinks = 10;
  to.seed = 63;
  const auto t = tree::make_random_tree(to);

  auto m2 = wid_model(t);
  stat_options o2 = four_param_options();
  o2.rule = pruning_kind::two_param;
  const auto r2 = run_statistical_insertion(t, m2, o2);

  auto m4 = wid_model(t);
  auto o4 = four_param_options();
  o4.max_candidates = 10'000'000;
  o4.max_list_size = 50'000;
  o4.max_wall_seconds = 60.0;
  const auto r4 = run_statistical_insertion(t, m4, o4);

  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_GT(r4.stats.merge_pairs, 2 * r2.stats.merge_pairs);
}

}  // namespace
}  // namespace vabi::core
