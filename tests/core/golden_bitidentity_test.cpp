// Golden bit-identity regression of the DP engines.
//
// The arena refactor (pooled canonical forms, sealed per-node slabs) promises
// *bit-identical* results to the historical value-semantics engines. These
// hashes were captured from the pre-refactor engines (commit 99a9d48) on the
// exact scenario below: FNV-1a over the raw bytes of the winning root RAT
// form (nominal + every (id, coeff) term), the per-node buffer and wire
// assignment, num_buffers, and the work counters {candidates_created,
// candidates_pruned, merge_pairs, peak_list_size}.
//
// If a change moves any of these hashes, it changed either the arithmetic
// (an FP expression was reassociated -- see the kernel contracts in
// stats/linear_form.cpp and the global -ffp-contract=off) or the engine's
// work flow (a prune/merge/selection decision). Neither may happen silently:
// recapture only with an explicit justification in the commit message.
//
// dp_stats::allocations and ::peak_terms are deliberately NOT hashed -- they
// describe memory behavior, which the bit-identity contract excludes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/statistical_dp.hpp"
#include "layout/process_model.hpp"
#include "timing/buffer_library.hpp"
#include "tree/benchmarks.hpp"

namespace vabi::core {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_double(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a(h, &bits, sizeof bits);
}

std::uint64_t hash_result(const stat_result& r, std::size_t num_nodes) {
  std::uint64_t h = 1469598103934665603ull;
  h = hash_double(h, r.root_rat.nominal());
  for (const auto& t : r.root_rat.terms()) {
    h = fnv1a(h, &t.id, sizeof t.id);
    h = hash_double(h, t.coeff);
  }
  for (tree::node_id n = 0; n < num_nodes; ++n) {
    const unsigned char has = r.assignment.has_buffer(n) ? 1 : 0;
    h = fnv1a(h, &has, 1);
    if (has) {
      const auto b = r.assignment.buffer(n);
      h = fnv1a(h, &b, sizeof b);
    }
    if (r.wires.num_nodes() == num_nodes) {
      const auto w = r.wires.width(n);
      h = fnv1a(h, &w, sizeof w);
    }
  }
  const std::uint64_t nb = r.num_buffers;
  h = fnv1a(h, &nb, sizeof nb);
  const std::uint64_t counters[4] = {r.stats.candidates_created,
                                     r.stats.candidates_pruned,
                                     r.stats.merge_pairs,
                                     r.stats.peak_list_size};
  h = fnv1a(h, counters, sizeof counters);
  return h;
}

struct golden {
  const char* name;
  pruning_kind rule;
  bool sizing;
  double pbar;
  std::uint64_t hash;
  std::size_t num_buffers;
};

// Captured from the pre-arena engines; see the file comment.
constexpr golden kGoldens[] = {
    {"2p", pruning_kind::two_param, false, 0.5, 0x18913f9a9453df78ull, 28},
    {"4p", pruning_kind::four_param, false, 0.5, 0xcc894e49c73a36e0ull, 28},
    {"corner", pruning_kind::corner, false, 0.5, 0x51e39a632cbc5253ull, 28},
    {"2p_sized", pruning_kind::two_param, true, 0.5, 0x622efb0083153531ull,
     28},
    {"2p_p90", pruning_kind::two_param, false, 0.9, 0xd57a348d3f41c013ull,
     28},
};

class GoldenBitIdentity : public testing::TestWithParam<golden> {};

TEST_P(GoldenBitIdentity, MatchesPreArenaEngine) {
  const golden& g = GetParam();

  tree::benchmark_spec spec;
  spec.name = "golden";
  spec.sinks = 48;
  spec.die_side_um = 3000.0;
  spec.seed = 4242;
  const auto net = tree::build_benchmark(spec);

  layout::process_model_config pc;
  pc.mode = layout::wid_mode();
  pc.spatial.profile = layout::spatial_profile::heterogeneous;
  layout::process_model model{layout::square_die(spec.die_side_um), pc};

  stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  o.rule = g.rule;
  o.root_percentile = 0.05;
  o.selection_percentile = 0.05;
  if (g.sizing) o.wire_width_multipliers = {1.0, 2.0, 4.0};
  o.two_param.p_load = g.pbar;
  o.two_param.p_rat = g.pbar;

  const auto r = run_statistical_insertion(net, model, o);
  ASSERT_TRUE(r.ok()) << r.stats.abort_reason;
  EXPECT_EQ(r.num_buffers, g.num_buffers) << g.name;
  EXPECT_EQ(hash_result(r, net.num_nodes()), g.hash)
      << g.name << ": bit-identity with the pre-arena engine broke -- see "
      << "the file comment before recapturing";
}

INSTANTIATE_TEST_SUITE_P(AllRules, GoldenBitIdentity,
                         testing::ValuesIn(kGoldens),
                         [](const testing::TestParamInfo<golden>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace vabi::core
