// Shared helper for the crash-recovery and journal tests: a deterministic
// FNV-1a hash over everything a batch of solve outcomes is contractually
// required to reproduce bit-identically -- canonical root RAT form (nominal
// and term coefficients as raw bit patterns), buffer and wire assignments,
// buffer counts, the deterministic dp_stats counters, and typed error codes.
// Wall-clock seconds and allocation counters are deliberately excluded: they
// vary run to run without breaking the determinism contract.
#pragma once

#include <cstdint>
#include <vector>

#include "core/journal.hpp"
#include "core/parallel.hpp"

namespace vabi::core::test_util {

inline std::uint64_t hash_result(const stat_result& r, std::uint64_t h) {
  h = fnv1a_f64(r.root_rat.nominal(), h);
  for (const auto& term : r.root_rat.terms()) {
    h = fnv1a_u64(term.id, h);
    h = fnv1a_f64(term.coeff, h);
  }
  h = fnv1a_u64(r.assignment.num_nodes(), h);
  for (std::size_t id = 0; id < r.assignment.num_nodes(); ++id) {
    h = fnv1a_u64(r.assignment.has_buffer(id)
                      ? static_cast<std::uint64_t>(r.assignment.buffer(id))
                      : ~std::uint64_t{0},
                  h);
  }
  h = fnv1a_u64(r.wires.num_nodes(), h);
  for (std::size_t id = 0; id < r.wires.num_nodes(); ++id) {
    h = fnv1a_u64(r.wires.width(id), h);
  }
  h = fnv1a_u64(r.num_buffers, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(r.path), h);
  h = fnv1a_u64(r.stats.candidates_created, h);
  h = fnv1a_u64(r.stats.candidates_pruned, h);
  h = fnv1a_u64(r.stats.merge_pairs, h);
  h = fnv1a_u64(r.stats.peak_list_size, h);
  return h;
}

inline std::uint64_t hash_outcomes(
    const std::vector<solve_outcome<batch_result>>& slots) {
  std::uint64_t h = fnv1a_u64(slots.size(), fnv1a_seed);
  for (const auto& slot : slots) {
    if (slot.ok()) {
      h = fnv1a_u64(1, h);
      h = hash_result(slot->result, h);
    } else {
      h = fnv1a_u64(0, h);
      h = fnv1a_u64(static_cast<std::uint64_t>(slot.error().code), h);
      h = fnv1a_str(slot.error().detail, h);
    }
  }
  return h;
}

}  // namespace vabi::core::test_util
