// Simultaneous buffer insertion + wire sizing (the [8] extension) in both
// DP engines: optimality against a sized brute force on tiny nets, monotone
// improvement over buffering alone, and backtrace consistency.
#include <gtest/gtest.h>

#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

const std::vector<double> k_widths{1.0, 2.0, 4.0};

det_options sized_options() {
  det_options o;
  o.library = timing::single_buffer_library();
  o.driver_res_ohm = 150.0;
  o.wire_width_multipliers = k_widths;
  return o;
}

// Exhaustive oracle over buffers AND widths for very small chains.
double brute_force_sized_rat(const tree::routing_tree& t,
                             const det_options& o) {
  const timing::wire_menu menu{o.wire, o.wire_width_multipliers};
  const std::size_t positions = t.num_nodes() - 1;
  const std::size_t bchoices = o.library.size() + 1;
  double best = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> bsel(positions, 0);
  std::vector<std::size_t> wsel(positions, 0);
  const auto advance = [](std::vector<std::size_t>& v, std::size_t radix) {
    std::size_t i = 0;
    while (i < v.size() && ++v[i] == radix) {
      v[i] = 0;
      ++i;
    }
    return i < v.size();
  };
  bool more_b = true;
  while (more_b) {
    timing::buffer_assignment ba(t.num_nodes());
    for (std::size_t i = 0; i < positions; ++i) {
      if (bsel[i] != 0) {
        ba.place(static_cast<tree::node_id>(i + 1),
                 static_cast<timing::buffer_index>(bsel[i] - 1));
      }
    }
    bool more_w = true;
    std::fill(wsel.begin(), wsel.end(), 0);
    while (more_w) {
      timing::wire_assignment wa(t.num_nodes());
      for (std::size_t i = 0; i < positions; ++i) {
        wa.set(static_cast<tree::node_id>(i + 1),
               static_cast<timing::width_index>(wsel[i]));
      }
      const auto r = timing::evaluate_buffered_tree(t, menu, wa, o.library, ba,
                                                    o.driver_res_ohm);
      best = std::max(best, r.root_rat_ps);
      more_w = advance(wsel, menu.size());
    }
    more_b = advance(bsel, bchoices);
  }
  return best;
}

TEST(WireSizingDp, ChainMatchesSizedBruteForce) {
  tree::chain_options co;
  co.length_um = 6000.0;
  co.segments = 4;
  co.sink_cap_pf = 0.08;
  const auto t = tree::make_chain(co);
  const auto o = sized_options();
  const auto dp = run_van_ginneken(t, o);
  const double oracle = brute_force_sized_rat(t, o);
  EXPECT_NEAR(dp.root_rat_ps, oracle, 1e-9);
}

class SizedOptimality : public ::testing::TestWithParam<int> {};

TEST_P(SizedOptimality, SmallRandomTreesMatchOracle) {
  tree::random_tree_options to;
  to.num_sinks = 3;  // 5 positions: 2^5 buffers x 3^5 widths = manageable
  to.die_side_um = 6000.0;
  to.seed = 7000 + static_cast<std::uint64_t>(GetParam());
  to.sink_cap_min_pf = 0.03;
  to.sink_cap_max_pf = 0.09;
  const auto t = tree::make_random_tree(to);
  const auto o = sized_options();
  const auto dp = run_van_ginneken(t, o);
  EXPECT_NEAR(dp.root_rat_ps, brute_force_sized_rat(t, o), 1e-9)
      << "seed " << to.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SizedOptimality, ::testing::Range(0, 8));

TEST(WireSizingDp, SizingNeverHurts) {
  tree::random_tree_options to;
  to.num_sinks = 80;
  to.die_side_um = 9000.0;
  to.seed = 9;
  const auto t = tree::make_random_tree(to);
  det_options plain;
  plain.library = timing::standard_library();
  plain.driver_res_ohm = 150.0;
  det_options sized = plain;
  sized.wire_width_multipliers = k_widths;
  const auto r_plain = run_van_ginneken(t, plain);
  const auto r_sized = run_van_ginneken(t, sized);
  EXPECT_GE(r_sized.root_rat_ps, r_plain.root_rat_ps - 1e-9);
}

TEST(WireSizingDp, BacktraceReproducesReportedRat) {
  tree::random_tree_options to;
  to.num_sinks = 60;
  to.die_side_um = 9000.0;
  to.seed = 10;
  const auto t = tree::make_random_tree(to);
  det_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  o.wire_width_multipliers = k_widths;
  const auto dp = run_van_ginneken(t, o);
  const timing::wire_menu menu{o.wire, o.wire_width_multipliers};
  const auto eval = timing::evaluate_buffered_tree(
      t, menu, dp.wires, o.library, dp.assignment, o.driver_res_ohm);
  EXPECT_NEAR(eval.root_rat_ps, dp.root_rat_ps, 1e-6);
  // Sizing actually got used somewhere on a net this large.
  EXPECT_GT(dp.wires.count_nondefault(), 0u);
}

TEST(WireSizingDp, StatisticalEngineSupportsSizing) {
  tree::random_tree_options to;
  to.num_sinks = 40;
  to.die_side_um = 9000.0;
  to.seed = 11;
  const auto t = tree::make_random_tree(to);

  layout::process_model_config c;
  c.mode = layout::wid_mode();
  layout::bbox die = t.bounding_box();
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});

  core::stat_options plain;
  plain.library = timing::standard_library();
  plain.driver_res_ohm = 150.0;
  core::stat_options sized = plain;
  sized.wire_width_multipliers = k_widths;

  layout::process_model m1{die, c};
  const auto r_plain = run_statistical_insertion(t, m1, plain);
  layout::process_model m2{die, c};
  const auto r_sized = run_statistical_insertion(t, m2, sized);
  ASSERT_TRUE(r_plain.ok());
  ASSERT_TRUE(r_sized.ok());
  // Sizing widens the design space: the chosen percentile objective cannot
  // get worse (compare in each run's own space; means are comparable).
  EXPECT_GE(r_sized.root_rat.mean(), r_plain.root_rat.mean() - 1.0);
  EXPECT_GT(r_sized.wires.count_nondefault(), 0u);
}

TEST(WireSizingDp, ZeroVariationSizedMatchesDeterministicSized) {
  tree::random_tree_options to;
  to.num_sinks = 50;
  to.die_side_um = 9000.0;
  to.seed = 12;
  const auto t = tree::make_random_tree(to);

  det_options det;
  det.library = timing::standard_library();
  det.driver_res_ohm = 150.0;
  det.wire_width_multipliers = k_widths;
  const auto vg = run_van_ginneken(t, det);

  layout::process_model_config c;
  c.mode = layout::nom_mode();
  layout::bbox die = t.bounding_box();
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  layout::process_model model{die, c};
  core::stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  o.wire_width_multipliers = k_widths;
  o.root_percentile = 0.5;
  const auto st = run_statistical_insertion(t, model, o);
  ASSERT_TRUE(st.ok());
  EXPECT_NEAR(st.root_rat.mean(), vg.root_rat_ps, 1e-6);
}

}  // namespace
}  // namespace vabi::core
