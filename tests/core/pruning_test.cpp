#include "core/pruning.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>

#include "stats/rng.hpp"

namespace vabi::core {
namespace {

stat_candidate make_cand(double load_mean, double rat_mean,
                         std::vector<stats::lf_term> load_terms = {},
                         std::vector<stats::lf_term> rat_terms = {}) {
  return {stats::linear_form{load_mean, std::move(load_terms)},
          stats::linear_form{rat_mean, std::move(rat_terms)}, nullptr};
}

// ---------------------------------------------------------------------------
// Deterministic rule.
// ---------------------------------------------------------------------------

TEST(DetPruning, DominanceDefinition) {
  det_candidate a{0.1, 5.0, nullptr};
  det_candidate b{0.2, 4.0, nullptr};
  EXPECT_TRUE(det_dominates(a, b));
  EXPECT_FALSE(det_dominates(b, a));
  det_candidate c{0.05, 3.0, nullptr};  // less load but worse rat
  EXPECT_FALSE(det_dominates(a, c));
  EXPECT_FALSE(det_dominates(c, a));
}

TEST(DetPruning, KeepsParetoFrontSorted) {
  dp_stats s;
  std::vector<det_candidate> list{
      {0.3, 6.0, nullptr}, {0.1, 5.0, nullptr}, {0.2, 4.0, nullptr},
      {0.15, 5.5, nullptr}, {0.4, 7.0, nullptr}};
  prune_deterministic(list, s);
  // (0.2, 4.0) dominated by (0.1, 5.0); (0.3,6.0)? (0.15,5.5) doesn't beat it.
  ASSERT_EQ(list.size(), 4u);
  for (std::size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1].load_pf, list[i].load_pf);
    EXPECT_LT(list[i - 1].rat_ps, list[i].rat_ps);
  }
  EXPECT_EQ(s.candidates_pruned, 1u);
}

TEST(DetPruning, DeduplicatesEqualCandidates) {
  dp_stats s;
  std::vector<det_candidate> list{{0.1, 5.0, nullptr}, {0.1, 5.0, nullptr}};
  prune_deterministic(list, s);
  EXPECT_EQ(list.size(), 1u);
}

// ---------------------------------------------------------------------------
// Two-parameter rule.
// ---------------------------------------------------------------------------

class TwoParamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = space_.add_source(stats::source_kind::random_device, 1.0);
    y_ = space_.add_source(stats::source_kind::random_device, 1.0);
  }
  stats::variation_space space_;
  stats::source_id x_ = 0, y_ = 0;
};

TEST_F(TwoParamTest, MeanRuleComparesMeans) {
  const two_param_rule rule;  // p = 0.5
  const auto a = make_cand(0.1, 5.0, {{x_, 0.01}}, {{x_, 1.0}});
  const auto b = make_cand(0.2, 4.0, {{y_, 0.05}}, {{y_, 3.0}});
  EXPECT_TRUE(dominates(rule, a, b, space_));
  EXPECT_FALSE(dominates(rule, b, a, space_));
}

TEST_F(TwoParamTest, MeanRuleTieIsMutualDominance) {
  const two_param_rule rule;
  const auto a = make_cand(0.1, 5.0);
  const auto b = make_cand(0.1, 5.0, {{x_, 0.01}}, {{x_, 2.0}});
  // Equal means: each dominates the other (dedup semantics).
  EXPECT_TRUE(dominates(rule, a, b, space_));
  EXPECT_TRUE(dominates(rule, b, a, space_));
}

TEST_F(TwoParamTest, HigherConfidenceRequiresSeparation) {
  two_param_rule rule;
  rule.p_load = 0.9;
  rule.p_rat = 0.9;
  // Means barely separated, sigma large: probabilities near 0.5 -> no
  // dominance in either direction.
  const auto a = make_cand(0.10, 5.0, {{x_, 0.05}}, {{x_, 10.0}});
  const auto b = make_cand(0.11, 4.9, {{y_, 0.05}}, {{y_, 10.0}});
  EXPECT_FALSE(dominates(rule, a, b, space_));
  EXPECT_FALSE(dominates(rule, b, a, space_));
  // Widely separated means: dominance holds even at p = 0.9.
  const auto c = make_cand(0.10, 5.0, {{x_, 0.001}}, {{x_, 0.1}});
  const auto d = make_cand(0.50, -20.0, {{y_, 0.001}}, {{y_, 0.1}});
  EXPECT_TRUE(dominates(rule, c, d, space_));
}

TEST_F(TwoParamTest, IdenticalFormTieConventionAtHighP) {
  two_param_rule rule;
  rule.p_load = 0.9;
  rule.p_rat = 0.9;
  // Same load form (the shared-buffer case), clearly separated RATs.
  const stats::linear_form shared_load{0.1, {{x_, 0.01}}};
  stat_candidate a{shared_load, stats::linear_form{5.0, {{y_, 0.1}}}, nullptr};
  stat_candidate b{shared_load, stats::linear_form{0.0, {{y_, 0.1}}}, nullptr};
  EXPECT_TRUE(dominates(rule, a, b, space_));
  EXPECT_FALSE(dominates(rule, b, a, space_));
}

TEST_F(TwoParamTest, PruneKeepsMeanParetoFront) {
  const two_param_rule rule;
  dp_stats s;
  std::vector<stat_candidate> list;
  list.push_back(make_cand(0.3, 6.0));
  list.push_back(make_cand(0.1, 5.0, {{x_, 0.02}}, {{x_, 0.5}}));
  list.push_back(make_cand(0.2, 4.0));  // dominated
  list.push_back(make_cand(0.4, 7.0, {{y_, 0.02}}, {{y_, 0.5}}));
  prune_two_param(rule, list, space_, s);
  ASSERT_EQ(list.size(), 3u);
  for (std::size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1].load.mean(), list[i].load.mean());
    EXPECT_LT(list[i - 1].rat.mean(), list[i].rat.mean());
  }
  EXPECT_EQ(s.candidates_pruned, 1u);
  EXPECT_TRUE(is_mutually_non_dominated(rule, list, space_));
}

TEST_F(TwoParamTest, PruneExactAtMeanRule) {
  // Result contains exactly the non-dominated candidates (checked by brute
  // force on a random-ish fixed set).
  const two_param_rule rule;
  std::vector<stat_candidate> list;
  const double loads[] = {0.5, 0.2, 0.9, 0.2, 0.7, 0.1, 0.3};
  const double rats[] = {3.0, 1.0, 9.0, 2.0, 6.0, 1.0, 2.5};
  for (int i = 0; i < 7; ++i) list.push_back(make_cand(loads[i], rats[i]));
  std::vector<stat_candidate> copy = list;
  dp_stats s;
  prune_two_param(rule, list, space_, s);
  // Brute-force the expected survivor count.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < copy.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < copy.size() && !dominated; ++j) {
      if (i != j) {
        const bool d = dominates(rule, copy[j], copy[i], space_);
        const bool rev = dominates(rule, copy[i], copy[j], space_);
        // Mutual (tie) dominance: the sweep keeps exactly one; count the
        // first index as the survivor.
        dominated = d && (!rev || j < i);
      }
    }
    if (!dominated) ++expected;
  }
  EXPECT_EQ(list.size(), expected);
}

// ---------------------------------------------------------------------------
// Four-parameter rule.
// ---------------------------------------------------------------------------

TEST_F(TwoParamTest, FourParamNeedsPercentileSeparation) {
  const four_param_rule rule;
  // Overlapping percentile intervals: no dominance either way.
  const auto a = make_cand(0.10, 5.0, {{x_, 0.02}}, {{x_, 2.0}});
  const auto b = make_cand(0.12, 4.5, {{y_, 0.02}}, {{y_, 2.0}});
  EXPECT_FALSE(dominates(rule, a, b, space_));
  EXPECT_FALSE(dominates(rule, b, a, space_));
  // Separated beyond the 5/95 percentiles: dominance.
  const auto c = make_cand(0.10, 5.0, {{x_, 0.001}}, {{x_, 0.1}});
  const auto d = make_cand(0.50, -10.0, {{y_, 0.001}}, {{y_, 0.1}});
  EXPECT_TRUE(dominates(rule, c, d, space_));
}

TEST_F(TwoParamTest, FourParamPruneRemovesOnlyDominated) {
  const four_param_rule rule;
  dp_stats s;
  std::vector<stat_candidate> list;
  list.push_back(make_cand(0.10, 5.0, {{x_, 0.001}}, {{x_, 0.1}}));
  list.push_back(make_cand(0.50, -10.0, {{y_, 0.001}}, {{y_, 0.1}}));  // dead
  list.push_back(make_cand(0.12, 4.9, {{y_, 0.02}}, {{y_, 2.0}}));    // kept
  prune_four_param(rule, list, space_, s);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(s.candidates_pruned, 1u);
  EXPECT_TRUE(is_mutually_non_dominated(rule, list, space_));
}

TEST_F(TwoParamTest, FourParamKeepsMoreThanTwoParam) {
  // The same cloud of near candidates: 2P mean rule collapses it, 4P keeps
  // everything whose percentile intervals overlap -- the capacity problem.
  std::vector<stat_candidate> for_2p;
  std::vector<stat_candidate> for_4p;
  for (int i = 0; i < 10; ++i) {
    auto c = make_cand(0.1 + 0.001 * i, 5.0 - 0.001 * i, {{x_, 0.02}},
                       {{y_, 2.0}});
    for_2p.push_back(c);
    for_4p.push_back(c);
  }
  dp_stats s2, s4;
  prune_two_param(two_param_rule{}, for_2p, space_, s2);
  prune_four_param(four_param_rule{}, for_4p, space_, s4);
  EXPECT_EQ(for_2p.size(), 1u);
  EXPECT_EQ(for_4p.size(), 10u);
}

// ---------------------------------------------------------------------------
// Corner rule.
// ---------------------------------------------------------------------------

TEST_F(TwoParamTest, CornerRuleProjectsAndCompares) {
  const corner_rule rule;  // q = 0.95
  // Same means, different sigma: the corner rule penalizes spread.
  const auto tight = make_cand(0.1, 5.0, {{x_, 0.001}}, {{x_, 0.1}});
  const auto wide = make_cand(0.1, 5.0, {{y_, 0.05}}, {{y_, 5.0}});
  EXPECT_TRUE(dominates(rule, tight, wide, space_));
  EXPECT_FALSE(dominates(rule, wide, tight, space_));
}

TEST_F(TwoParamTest, CornerPruneTotalOrder) {
  const corner_rule rule;
  dp_stats s;
  std::vector<stat_candidate> list;
  for (int i = 0; i < 6; ++i) {
    list.push_back(make_cand(0.1 + 0.05 * i, 5.0 - 1.0 * i));
  }
  prune_corner(rule, list, space_, s);
  EXPECT_EQ(list.size(), 1u);  // strictly worse in both -> collapse
}

// ---------------------------------------------------------------------------
// Prefilter / sigma-memo / moment-cache equivalence. The interval prefilter
// and the cached moments are pure accelerations: dominates() must return
// exactly what the direct probability formula returns, for every pair.
// ---------------------------------------------------------------------------

class PrefilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 6; ++i) {
      ids_[i] =
          space_.add_source(stats::source_kind::random_device, 0.4 + 0.3 * i);
    }
  }

  /// The 2P dominance condition written directly from eqs. (6)-(7), with the
  /// identical-form tie convention -- the definition dominates() accelerates.
  bool reference_dominates(const two_param_rule& rule, const stat_candidate& a,
                           const stat_candidate& b) const {
    const bool load_ok = a.load == b.load ||
                         stats::prob_greater(b.load, a.load, space_) >=
                             rule.p_load;
    const bool rat_ok =
        b.rat == a.rat ||
        stats::prob_greater(a.rat, b.rat, space_) >= rule.p_rat;
    return load_ok && rat_ok;
  }

  stat_candidate random_cand(stats::rng_engine& rng, double mean_span) const {
    std::uniform_real_distribution<double> mean(-mean_span, mean_span);
    std::uniform_real_distribution<double> coeff(-0.2, 0.2);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::vector<stats::lf_term> lt, rt;
    for (const auto id : ids_) {
      if (unit(rng) < 0.7) lt.push_back({id, coeff(rng)});
      if (unit(rng) < 0.7) rt.push_back({id, 5.0 * coeff(rng)});
    }
    return make_cand(mean(rng), 10.0 * mean(rng), std::move(lt),
                     std::move(rt));
  }

  stats::variation_space space_;
  stats::source_id ids_[6] = {};
};

TEST_F(PrefilterTest, DominatesMatchesDirectFormula) {
  // mean_span sweeps the three prefilter regimes: tiny separations (always
  // fall through to the exact pass), comparable (mixed), and huge (almost
  // every pair resolves in the prefilter). In all of them the decision must
  // equal the direct formula.
  for (const double p : {0.6, 0.8, 0.99}) {
    const two_param_rule rule{p, p};
    for (const double mean_span : {0.01, 1.0, 100.0}) {
      auto rng = stats::make_rng(42, static_cast<std::uint64_t>(p * 100) +
                                         static_cast<std::uint64_t>(mean_span));
      std::vector<stat_candidate> cands;
      for (int i = 0; i < 24; ++i) cands.push_back(random_cand(rng, mean_span));
      cands.push_back(make_cand(0.0, 0.0));  // zero-sigma corner
      cands.push_back(cands.front());        // identical-form tie corner
      for (const auto& a : cands) {
        for (const auto& b : cands) {
          EXPECT_EQ(dominates(rule, a, b, space_),
                    reference_dominates(rule, a, b))
              << "p=" << p << " span=" << mean_span;
        }
      }
    }
  }
}

TEST_F(PrefilterTest, PrefilterHitsAreCountedOnSeparatedPairs) {
  // Far-separated means with small sigmas: every probability comparison is
  // decided by the mean +- k*sigma interval, so the sweep should record
  // prefilter hits and still keep exactly the Pareto front.
  const two_param_rule rule{0.9, 0.9};
  dp_stats s;
  std::vector<stat_candidate> list;
  for (int i = 0; i < 8; ++i) {
    list.push_back(make_cand(10.0 * i, 500.0 - 100.0 * i,
                             {{ids_[0], 0.01}}, {{ids_[1], 0.02}}));
  }
  list.push_back(make_cand(5.0, -1e4, {{ids_[2], 0.01}}, {{ids_[3], 0.02}}));
  prune_two_param(rule, list, space_, s);
  // The pairwise sweep records hits in dominance_prefilter_hits, the tiled
  // sweep in tile_prefilter_hits -- which one runs depends on the
  // VABI_FORCE_PRUNE policy, so accept either counter.
  EXPECT_GT(s.dominance_prefilter_hits + s.tile_prefilter_hits, 0u);
  EXPECT_TRUE(is_mutually_non_dominated(rule, list, space_));
}

TEST_F(PrefilterTest, SigmaDiffCacheIsSymmetricAndExact) {
  auto rng = stats::make_rng(7);
  const auto a = random_cand(rng, 1.0);
  const auto b = random_cand(rng, 1.0);
  sigma_diff_cache cache;
  const double xy = cache.get(a.load, b.load, space_);
  const double yx = cache.get(b.load, a.load, space_);
  const double direct = stats::sigma_of_difference(a.load, b.load, space_);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(xy),
            std::bit_cast<std::uint64_t>(direct));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(yx),
            std::bit_cast<std::uint64_t>(direct));
}

TEST_F(PrefilterTest, CachedDominatesMatchesUncached) {
  auto rng = stats::make_rng(11);
  const two_param_rule rule{0.75, 0.85};
  std::vector<stat_candidate> cands;
  for (int i = 0; i < 12; ++i) cands.push_back(random_cand(rng, 0.5));
  sigma_diff_cache cache;
  for (const auto& a : cands) {
    for (const auto& b : cands) {
      EXPECT_EQ(dominates(rule, a, b, space_, cache),
                dominates(rule, a, b, space_));
    }
  }
  EXPECT_EQ(is_mutually_non_dominated(rule, cands, space_),
            is_mutually_non_dominated<two_param_rule>(rule, cands, space_));
}

TEST_F(PrefilterTest, MomentCacheLazyAndInvalidates) {
  const auto c = make_cand(1.0, 2.0, {{ids_[0], 0.25}, {ids_[1], -0.5}},
                           {{ids_[2], 1.5}});
  const double direct_load = c.load.variance(space_);
  const double direct_rat = c.rat.variance(space_);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(c.load_variance(space_)),
            std::bit_cast<std::uint64_t>(direct_load));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(c.rat_variance(space_)),
            std::bit_cast<std::uint64_t>(direct_rat));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(c.load_stddev(space_)),
            std::bit_cast<std::uint64_t>(std::sqrt(direct_load)));
  // Cached bits survive repeat queries.
  EXPECT_EQ(c.load_variance(space_), direct_load);
  c.invalidate_load_moments();
  c.invalidate_rat_moments();
  EXPECT_EQ(c.load_variance(space_), direct_load);
  EXPECT_EQ(c.rat_variance(space_), direct_rat);
}

}  // namespace
}  // namespace vabi::core
