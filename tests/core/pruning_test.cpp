#include "core/pruning.hpp"

#include <gtest/gtest.h>

namespace vabi::core {
namespace {

stat_candidate make_cand(double load_mean, double rat_mean,
                         std::vector<stats::lf_term> load_terms = {},
                         std::vector<stats::lf_term> rat_terms = {}) {
  return {stats::linear_form{load_mean, std::move(load_terms)},
          stats::linear_form{rat_mean, std::move(rat_terms)}, nullptr};
}

// ---------------------------------------------------------------------------
// Deterministic rule.
// ---------------------------------------------------------------------------

TEST(DetPruning, DominanceDefinition) {
  det_candidate a{0.1, 5.0, nullptr};
  det_candidate b{0.2, 4.0, nullptr};
  EXPECT_TRUE(det_dominates(a, b));
  EXPECT_FALSE(det_dominates(b, a));
  det_candidate c{0.05, 3.0, nullptr};  // less load but worse rat
  EXPECT_FALSE(det_dominates(a, c));
  EXPECT_FALSE(det_dominates(c, a));
}

TEST(DetPruning, KeepsParetoFrontSorted) {
  dp_stats s;
  std::vector<det_candidate> list{
      {0.3, 6.0, nullptr}, {0.1, 5.0, nullptr}, {0.2, 4.0, nullptr},
      {0.15, 5.5, nullptr}, {0.4, 7.0, nullptr}};
  prune_deterministic(list, s);
  // (0.2, 4.0) dominated by (0.1, 5.0); (0.3,6.0)? (0.15,5.5) doesn't beat it.
  ASSERT_EQ(list.size(), 4u);
  for (std::size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1].load_pf, list[i].load_pf);
    EXPECT_LT(list[i - 1].rat_ps, list[i].rat_ps);
  }
  EXPECT_EQ(s.candidates_pruned, 1u);
}

TEST(DetPruning, DeduplicatesEqualCandidates) {
  dp_stats s;
  std::vector<det_candidate> list{{0.1, 5.0, nullptr}, {0.1, 5.0, nullptr}};
  prune_deterministic(list, s);
  EXPECT_EQ(list.size(), 1u);
}

// ---------------------------------------------------------------------------
// Two-parameter rule.
// ---------------------------------------------------------------------------

class TwoParamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = space_.add_source(stats::source_kind::random_device, 1.0);
    y_ = space_.add_source(stats::source_kind::random_device, 1.0);
  }
  stats::variation_space space_;
  stats::source_id x_ = 0, y_ = 0;
};

TEST_F(TwoParamTest, MeanRuleComparesMeans) {
  const two_param_rule rule;  // p = 0.5
  const auto a = make_cand(0.1, 5.0, {{x_, 0.01}}, {{x_, 1.0}});
  const auto b = make_cand(0.2, 4.0, {{y_, 0.05}}, {{y_, 3.0}});
  EXPECT_TRUE(dominates(rule, a, b, space_));
  EXPECT_FALSE(dominates(rule, b, a, space_));
}

TEST_F(TwoParamTest, MeanRuleTieIsMutualDominance) {
  const two_param_rule rule;
  const auto a = make_cand(0.1, 5.0);
  const auto b = make_cand(0.1, 5.0, {{x_, 0.01}}, {{x_, 2.0}});
  // Equal means: each dominates the other (dedup semantics).
  EXPECT_TRUE(dominates(rule, a, b, space_));
  EXPECT_TRUE(dominates(rule, b, a, space_));
}

TEST_F(TwoParamTest, HigherConfidenceRequiresSeparation) {
  two_param_rule rule;
  rule.p_load = 0.9;
  rule.p_rat = 0.9;
  // Means barely separated, sigma large: probabilities near 0.5 -> no
  // dominance in either direction.
  const auto a = make_cand(0.10, 5.0, {{x_, 0.05}}, {{x_, 10.0}});
  const auto b = make_cand(0.11, 4.9, {{y_, 0.05}}, {{y_, 10.0}});
  EXPECT_FALSE(dominates(rule, a, b, space_));
  EXPECT_FALSE(dominates(rule, b, a, space_));
  // Widely separated means: dominance holds even at p = 0.9.
  const auto c = make_cand(0.10, 5.0, {{x_, 0.001}}, {{x_, 0.1}});
  const auto d = make_cand(0.50, -20.0, {{y_, 0.001}}, {{y_, 0.1}});
  EXPECT_TRUE(dominates(rule, c, d, space_));
}

TEST_F(TwoParamTest, IdenticalFormTieConventionAtHighP) {
  two_param_rule rule;
  rule.p_load = 0.9;
  rule.p_rat = 0.9;
  // Same load form (the shared-buffer case), clearly separated RATs.
  const stats::linear_form shared_load{0.1, {{x_, 0.01}}};
  stat_candidate a{shared_load, stats::linear_form{5.0, {{y_, 0.1}}}, nullptr};
  stat_candidate b{shared_load, stats::linear_form{0.0, {{y_, 0.1}}}, nullptr};
  EXPECT_TRUE(dominates(rule, a, b, space_));
  EXPECT_FALSE(dominates(rule, b, a, space_));
}

TEST_F(TwoParamTest, PruneKeepsMeanParetoFront) {
  const two_param_rule rule;
  dp_stats s;
  std::vector<stat_candidate> list;
  list.push_back(make_cand(0.3, 6.0));
  list.push_back(make_cand(0.1, 5.0, {{x_, 0.02}}, {{x_, 0.5}}));
  list.push_back(make_cand(0.2, 4.0));  // dominated
  list.push_back(make_cand(0.4, 7.0, {{y_, 0.02}}, {{y_, 0.5}}));
  prune_two_param(rule, list, space_, s);
  ASSERT_EQ(list.size(), 3u);
  for (std::size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1].load.mean(), list[i].load.mean());
    EXPECT_LT(list[i - 1].rat.mean(), list[i].rat.mean());
  }
  EXPECT_EQ(s.candidates_pruned, 1u);
  EXPECT_TRUE(is_mutually_non_dominated(rule, list, space_));
}

TEST_F(TwoParamTest, PruneExactAtMeanRule) {
  // Result contains exactly the non-dominated candidates (checked by brute
  // force on a random-ish fixed set).
  const two_param_rule rule;
  std::vector<stat_candidate> list;
  const double loads[] = {0.5, 0.2, 0.9, 0.2, 0.7, 0.1, 0.3};
  const double rats[] = {3.0, 1.0, 9.0, 2.0, 6.0, 1.0, 2.5};
  for (int i = 0; i < 7; ++i) list.push_back(make_cand(loads[i], rats[i]));
  std::vector<stat_candidate> copy = list;
  dp_stats s;
  prune_two_param(rule, list, space_, s);
  // Brute-force the expected survivor count.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < copy.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < copy.size() && !dominated; ++j) {
      if (i != j) {
        const bool d = dominates(rule, copy[j], copy[i], space_);
        const bool rev = dominates(rule, copy[i], copy[j], space_);
        // Mutual (tie) dominance: the sweep keeps exactly one; count the
        // first index as the survivor.
        dominated = d && (!rev || j < i);
      }
    }
    if (!dominated) ++expected;
  }
  EXPECT_EQ(list.size(), expected);
}

// ---------------------------------------------------------------------------
// Four-parameter rule.
// ---------------------------------------------------------------------------

TEST_F(TwoParamTest, FourParamNeedsPercentileSeparation) {
  const four_param_rule rule;
  // Overlapping percentile intervals: no dominance either way.
  const auto a = make_cand(0.10, 5.0, {{x_, 0.02}}, {{x_, 2.0}});
  const auto b = make_cand(0.12, 4.5, {{y_, 0.02}}, {{y_, 2.0}});
  EXPECT_FALSE(dominates(rule, a, b, space_));
  EXPECT_FALSE(dominates(rule, b, a, space_));
  // Separated beyond the 5/95 percentiles: dominance.
  const auto c = make_cand(0.10, 5.0, {{x_, 0.001}}, {{x_, 0.1}});
  const auto d = make_cand(0.50, -10.0, {{y_, 0.001}}, {{y_, 0.1}});
  EXPECT_TRUE(dominates(rule, c, d, space_));
}

TEST_F(TwoParamTest, FourParamPruneRemovesOnlyDominated) {
  const four_param_rule rule;
  dp_stats s;
  std::vector<stat_candidate> list;
  list.push_back(make_cand(0.10, 5.0, {{x_, 0.001}}, {{x_, 0.1}}));
  list.push_back(make_cand(0.50, -10.0, {{y_, 0.001}}, {{y_, 0.1}}));  // dead
  list.push_back(make_cand(0.12, 4.9, {{y_, 0.02}}, {{y_, 2.0}}));    // kept
  prune_four_param(rule, list, space_, s);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(s.candidates_pruned, 1u);
  EXPECT_TRUE(is_mutually_non_dominated(rule, list, space_));
}

TEST_F(TwoParamTest, FourParamKeepsMoreThanTwoParam) {
  // The same cloud of near candidates: 2P mean rule collapses it, 4P keeps
  // everything whose percentile intervals overlap -- the capacity problem.
  std::vector<stat_candidate> for_2p;
  std::vector<stat_candidate> for_4p;
  for (int i = 0; i < 10; ++i) {
    auto c = make_cand(0.1 + 0.001 * i, 5.0 - 0.001 * i, {{x_, 0.02}},
                       {{y_, 2.0}});
    for_2p.push_back(c);
    for_4p.push_back(c);
  }
  dp_stats s2, s4;
  prune_two_param(two_param_rule{}, for_2p, space_, s2);
  prune_four_param(four_param_rule{}, for_4p, space_, s4);
  EXPECT_EQ(for_2p.size(), 1u);
  EXPECT_EQ(for_4p.size(), 10u);
}

// ---------------------------------------------------------------------------
// Corner rule.
// ---------------------------------------------------------------------------

TEST_F(TwoParamTest, CornerRuleProjectsAndCompares) {
  const corner_rule rule;  // q = 0.95
  // Same means, different sigma: the corner rule penalizes spread.
  const auto tight = make_cand(0.1, 5.0, {{x_, 0.001}}, {{x_, 0.1}});
  const auto wide = make_cand(0.1, 5.0, {{y_, 0.05}}, {{y_, 5.0}});
  EXPECT_TRUE(dominates(rule, tight, wide, space_));
  EXPECT_FALSE(dominates(rule, wide, tight, space_));
}

TEST_F(TwoParamTest, CornerPruneTotalOrder) {
  const corner_rule rule;
  dp_stats s;
  std::vector<stat_candidate> list;
  for (int i = 0; i < 6; ++i) {
    list.push_back(make_cand(0.1 + 0.05 * i, 5.0 - 1.0 * i));
  }
  prune_corner(rule, list, space_, s);
  EXPECT_EQ(list.size(), 1u);  // strictly worse in both -> collapse
}

}  // namespace
}  // namespace vabi::core
