// Bit-identity of the parallel engine against the serial DP.
//
// The contract of core/parallel.hpp: for completed runs, the parallel
// drivers (intra-tree task DAG and multi-net batch) produce bit-identical
// results to run_statistical_insertion -- identical canonical root RAT forms
// (same variation-source ids, same coefficients, compared with operator==,
// i.e. exact doubles), identical buffer and wire assignments, and identical
// dp_stats work counters -- for every pruning rule and any thread count.
// This is what lets callers switch thread counts freely without
// re-validating results, and it is the test CI runs under ThreadSanitizer.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <latch>
#include <vector>

#include "core/statistical_dp.hpp"
#include "stats/rng.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

layout::bbox padded_die(const tree::routing_tree& t) {
  layout::bbox die = t.bounding_box();
  die.expand({die.lo.x - 1.0, die.lo.y - 1.0});
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  return die;
}

layout::process_model make_model(const tree::routing_tree& t,
                                 layout::variation_mode mode) {
  layout::process_model_config c;
  c.mode = mode;
  return layout::process_model{padded_die(t), c};
}

tree::routing_tree make_net(std::size_t sinks, std::uint64_t seed) {
  tree::random_tree_options o;
  o.num_sinks = sinks;
  o.seed = seed;
  o.criticality_balance = 0.5;
  return tree::make_random_tree(o);
}

stat_options rule_options(pruning_kind rule) {
  stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  o.rule = rule;
  o.root_percentile = 0.05;
  return o;
}

void expect_identical(const stat_result& a, const stat_result& b) {
  ASSERT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.root_rat, b.root_rat);  // exact canonical forms, same ids
  EXPECT_EQ(a.num_buffers, b.num_buffers);
  ASSERT_EQ(a.assignment.num_nodes(), b.assignment.num_nodes());
  for (std::size_t i = 0; i < a.assignment.num_nodes(); ++i) {
    const auto id = static_cast<tree::node_id>(i);
    ASSERT_EQ(a.assignment.has_buffer(id), b.assignment.has_buffer(id));
    if (a.assignment.has_buffer(id)) {
      EXPECT_EQ(a.assignment.buffer(id), b.assignment.buffer(id));
    }
    EXPECT_EQ(a.wires.width(id), b.wires.width(id));
  }
  // The parallel engine does the same work, not just equivalent work.
  EXPECT_EQ(a.stats.candidates_created, b.stats.candidates_created);
  EXPECT_EQ(a.stats.candidates_pruned, b.stats.candidates_pruned);
  EXPECT_EQ(a.stats.merge_pairs, b.stats.merge_pairs);
  EXPECT_EQ(a.stats.peak_list_size, b.stats.peak_list_size);
}

void check_rule_across_threads(const tree::routing_tree& net,
                               const stat_options& options) {
  auto serial_model = make_model(net, layout::wid_mode());
  const auto serial = run_statistical_insertion(net, serial_model, options);
  ASSERT_TRUE(serial.ok()) << serial.stats.abort_reason;

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    thread_pool pool(threads);
    auto model = make_model(net, layout::wid_mode());
    const auto parallel = run_parallel_insertion(net, model, options, pool);
    expect_identical(serial, parallel);
    // The variation spaces must have grown identically too (same device
    // characterization order), or the form comparison above would be
    // comparing ids from different registries.
    EXPECT_EQ(model.space().size(), serial_model.space().size());
  }
}

TEST(ParallelDp, TwoParamBitIdentical) {
  check_rule_across_threads(make_net(200, 42),
                            rule_options(pruning_kind::two_param));
}

TEST(ParallelDp, TwoParamYieldDrivenSelectionBitIdentical) {
  auto o = rule_options(pruning_kind::two_param);
  o.selection_percentile = 0.05;  // the non-mean selection path
  check_rule_across_threads(make_net(120, 7), o);
}

TEST(ParallelDp, CornerRuleBitIdentical) {
  check_rule_across_threads(make_net(150, 11),
                            rule_options(pruning_kind::corner));
}

TEST(ParallelDp, FourParamBitIdentical) {
  // 4P is the quadratic baseline; keep the net small so the cross-product
  // merge stays in test-suite budget.
  check_rule_across_threads(make_net(14, 5),
                            rule_options(pruning_kind::four_param));
}

TEST(ParallelDp, WireSizingBitIdentical) {
  auto o = rule_options(pruning_kind::two_param);
  o.wire_width_multipliers = {0.8, 1.0, 1.3};
  check_rule_across_threads(make_net(60, 23), o);
}

TEST(ParallelDp, TermDropEpsilonBitIdentical) {
  // Satellite of the arena refactor: the relative-epsilon term drop at the
  // statistical-merge sites must not break thread-count invariance (the drop
  // is a pure function of the blended form, applied at the same sites in the
  // serial and parallel engines).
  auto o = rule_options(pruning_kind::two_param);
  o.term_prune_rel_eps = 1e-9;
  check_rule_across_threads(make_net(150, 31), o);
}

TEST(ParallelDp, ArenaCountersPopulated) {
  // allocations / peak_terms are memory telemetry, not part of the
  // bit-identity contract (expect_identical does not compare them) -- but
  // they must be populated by both drivers.
  const auto net = make_net(100, 17);
  const auto o = rule_options(pruning_kind::two_param);
  auto serial_model = make_model(net, layout::wid_mode());
  const auto serial = run_statistical_insertion(net, serial_model, o);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial.stats.allocations, 0u);
  EXPECT_GT(serial.stats.peak_terms, 0u);

  thread_pool pool(4);
  auto model = make_model(net, layout::wid_mode());
  const auto parallel = run_parallel_insertion(net, model, o, pool);
  ASSERT_TRUE(parallel.ok());
  EXPECT_GT(parallel.stats.allocations, 0u);
  EXPECT_GT(parallel.stats.peak_terms, 0u);
  // Same work => same candidate-list high-water mark in terms.
  EXPECT_EQ(parallel.stats.peak_terms, serial.stats.peak_terms);
}

TEST(ParallelDp, ResourceCapStillAborts) {
  const auto net = make_net(64, 3);
  auto o = rule_options(pruning_kind::four_param);
  o.max_candidates = 2'000;  // the full run needs ~9'200
  thread_pool pool(4);
  auto model = make_model(net, layout::wid_mode());
  const auto r = run_parallel_insertion(net, model, o, pool);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.stats.abort_reason.empty());
  EXPECT_EQ(r.num_buffers, 0u);
}

TEST(BatchSolver, MatchesIndividualSerialRuns) {
  std::vector<tree::routing_tree> nets;
  for (std::uint64_t seed : {101, 102, 103, 104, 105, 106}) {
    nets.push_back(make_net(80, seed));
  }

  std::vector<batch_job> jobs;
  for (const auto& net : nets) {
    batch_job j;
    j.tree = &net;
    j.options = rule_options(pruning_kind::two_param);
    j.model.mode = layout::wid_mode();
    jobs.push_back(std::move(j));
  }

  batch_solver::config cfg;
  cfg.num_threads = 4;
  batch_solver solver{cfg};
  const auto results = solver.solve(jobs);
  ASSERT_EQ(results.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "job " << i);
    layout::process_model model{padded_die(nets[i]), jobs[i].model};
    const auto serial = run_statistical_insertion(nets[i], model, jobs[i].options);
    expect_identical(serial, results[i].result);
    EXPECT_EQ(results[i].model.space().size(), model.space().size());
  }
}

TEST(BatchSolver, GeneratedJobsAreThreadCountInvariant) {
  const auto run_with = [](std::size_t threads) {
    std::vector<batch_job> jobs(5);
    for (auto& j : jobs) {
      tree::random_tree_options g;
      g.num_sinks = 60;
      g.criticality_balance = 0.5;
      j.generate = g;
      j.options = rule_options(pruning_kind::two_param);
      j.model.mode = layout::wid_mode();
    }
    batch_solver::config cfg;
    cfg.num_threads = threads;
    cfg.batch_seed = 99;  // per-job stream = derive_seed(99, i)
    batch_solver solver{cfg};
    return solver.solve(jobs);
  };

  const auto one = run_with(1);
  const auto four = run_with(4);
  ASSERT_EQ(one.size(), four.size());
  bool jobs_differ = false;
  for (std::size_t i = 0; i < one.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "job " << i);
    expect_identical(one[i].result, four[i].result);
    ASSERT_TRUE(one[i].generated.has_value());
    // Net generation really went through the derived per-job stream.
    EXPECT_EQ(one[i].generated->num_sinks(), 60u);
    if (i > 0 && one[i].result.root_rat != one[0].result.root_rat) {
      jobs_differ = true;
    }
  }
  EXPECT_TRUE(jobs_differ);  // distinct streams => distinct nets
}

TEST(BatchSolver, WorkerArenasReusedAcrossWavesStayIdentical) {
  // The solver keeps per-thread worker arenas alive between solve() calls
  // (begin_run() rewinds epochs but keeps the recycled slabs). Two
  // consecutive waves through the same solver -- with more jobs than
  // threads, so every worker solves several nets back-to-back on warm
  // arenas -- must produce the same results as a fresh solver. This is the
  // reuse path CI exercises under ThreadSanitizer.
  std::vector<tree::routing_tree> nets;
  for (std::uint64_t seed : {201, 202, 203, 204, 205, 206, 207}) {
    nets.push_back(make_net(70, seed));
  }
  std::vector<batch_job> jobs;
  for (const auto& net : nets) {
    batch_job j;
    j.tree = &net;
    j.options = rule_options(pruning_kind::two_param);
    j.model.mode = layout::wid_mode();
    jobs.push_back(std::move(j));
  }

  batch_solver::config cfg;
  cfg.num_threads = 2;  // 7 jobs on 2 threads => guaranteed arena reuse
  batch_solver reused{cfg};
  const auto wave1 = reused.solve(jobs);
  const auto wave2 = reused.solve(jobs);

  batch_solver fresh{cfg};
  const auto reference = fresh.solve(jobs);

  ASSERT_EQ(wave1.size(), jobs.size());
  ASSERT_EQ(wave2.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "job " << i);
    expect_identical(reference[i].result, wave1[i].result);
    expect_identical(reference[i].result, wave2[i].result);
  }
}

TEST(BatchSolver, PropagatesJobErrors) {
  batch_job bad;  // neither tree nor generate
  batch_solver::config cfg;
  cfg.num_threads = 2;
  batch_solver solver{cfg};
  EXPECT_THROW(solver.solve({bad}), std::invalid_argument);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  thread_pool pool(4);
  constexpr int n = 500;
  std::atomic<int> count{0};
  std::latch done{n};
  for (int i = 0; i < n; ++i) {
    pool.submit([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(count.load(), n);
}

TEST(ThreadPool, NestedSubmissionFromWorkers) {
  thread_pool pool(2);
  constexpr int n = 64;
  std::atomic<int> count{0};
  std::latch done{2 * n};
  for (int i = 0; i < n; ++i) {
    pool.submit([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      pool.submit([&] {  // child task submitted from inside a worker
        count.fetch_add(1, std::memory_order_relaxed);
        done.count_down();
      });
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(count.load(), 2 * n);
}

TEST(ThreadPool, DestructorDrainsNestedSubmissions) {
  // Regression test for the shutdown drain hazard: destroying the pool while
  // tasks are queued -- and while running tasks are still submitting
  // children -- must execute every task before the workers join. Before the
  // `active` counter a worker could observe stop && ready == 0 and exit
  // while a peer's in-flight task was about to submit a child, losing it (a
  // data race TSan flags; CI runs this suite under TSan).
  constexpr int n = 64;
  std::atomic<int> count{0};
  {
    thread_pool pool(4);
    for (int i = 0; i < n; ++i) {
      pool.submit([&count, &pool] {
        count.fetch_add(1, std::memory_order_relaxed);
        pool.submit([&count] {
          count.fetch_add(1, std::memory_order_relaxed);
        });
      });
    }
    // No latch: the destructor is the only synchronization.
  }
  EXPECT_EQ(count.load(), 2 * n);
}

TEST(DeriveSeed, StreamsAreDistinctAndStable) {
  EXPECT_EQ(stats::derive_seed(99, 0), stats::derive_seed(99, 0));
  EXPECT_NE(stats::derive_seed(99, 0), stats::derive_seed(99, 1));
  EXPECT_NE(stats::derive_seed(99, 0), stats::derive_seed(100, 0));
}

}  // namespace
}  // namespace vabi::core
