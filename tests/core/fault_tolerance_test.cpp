// Guardrail behavior under injected faults (src/testing/fault_injection.hpp).
//
// Every failure mode the solver stack promises to contain -- pool
// exhaustion, NaN-poisoned device fits, deadlines (real and injected),
// cancellation, throwing batch jobs -- is provoked deterministically here
// and must come back as a typed solve_error with a bounded blast radius:
// sibling jobs keep their results, a disarmed re-solve is bit-identical,
// and per-net outcome codes are thread-count-invariant.
//
// CI runs this suite across a VABI_FAULT_SPEC="seed=K" matrix (see
// .github/workflows/ci.yml); vabi::testing::env_seed() feeds that seed into
// the trigger ordinals and node selectors below, so each matrix entry
// exercises different injection sites with the same binary.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/statistical_dp.hpp"
#include "testing/fault_injection.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

namespace fi = vabi::testing;

layout::bbox padded_die(const tree::routing_tree& t) {
  layout::bbox die = t.bounding_box();
  die.expand({die.lo.x - 1.0, die.lo.y - 1.0});
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  return die;
}

layout::process_model make_model(const tree::routing_tree& t) {
  layout::process_model_config c;
  c.mode = layout::wid_mode();
  return layout::process_model{padded_die(t), c};
}

tree::routing_tree make_net(std::size_t sinks, std::uint64_t seed) {
  tree::random_tree_options o;
  o.num_sinks = sinks;
  o.seed = seed;
  o.criticality_balance = 0.5;
  return tree::make_random_tree(o);
}

stat_options base_options(pruning_kind rule = pruning_kind::two_param) {
  stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = 150.0;
  o.rule = rule;
  o.root_percentile = 0.05;
  return o;
}

void expect_identical(const stat_result& a, const stat_result& b) {
  ASSERT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.root_rat, b.root_rat);  // exact canonical forms, same ids
  EXPECT_EQ(a.num_buffers, b.num_buffers);
  ASSERT_EQ(a.assignment.num_nodes(), b.assignment.num_nodes());
  for (std::size_t i = 0; i < a.assignment.num_nodes(); ++i) {
    const auto id = static_cast<tree::node_id>(i);
    ASSERT_EQ(a.assignment.has_buffer(id), b.assignment.has_buffer(id));
    if (a.assignment.has_buffer(id)) {
      EXPECT_EQ(a.assignment.buffer(id), b.assignment.buffer(id));
    }
  }
  EXPECT_EQ(a.stats.candidates_created, b.stats.candidates_created);
}

/// Disarms every injection point after each test, so a failing assertion
/// can never leak an armed fault into the rest of the suite.
class FaultTolerance : public ::testing::Test {
 protected:
  void TearDown() override { fi::disarm(); }

  /// CI seed (1 outside the matrix): varies trigger ordinals / node
  /// selectors across matrix entries without changing what is asserted.
  const std::uint64_t seed_ = fi::env_seed();
};

// ---------------------------------------------------------------------------
// Spec parsing.
// ---------------------------------------------------------------------------

TEST_F(FaultTolerance, SpecParsing) {
  const auto cfg =
      fi::parse_fault_spec("term_pool_alloc:after=40;device_nan:node=7;seed=3");
  ASSERT_EQ(cfg.specs.size(), 2u);
  EXPECT_EQ(cfg.specs[0].point, fi::fault_point::term_pool_alloc);
  EXPECT_EQ(cfg.specs[0].after, 40u);
  EXPECT_EQ(cfg.specs[0].id, fi::any_id);
  EXPECT_EQ(cfg.specs[1].point, fi::fault_point::device_nan);
  EXPECT_EQ(cfg.specs[1].id, 7u);
  EXPECT_EQ(cfg.seed, 3u);

  EXPECT_EQ(fi::parse_fault_spec("batch_job_throw:job=2").specs[0].id, 2u);
  EXPECT_THROW(fi::parse_fault_spec("no_such_point"), std::invalid_argument);
  EXPECT_THROW(fi::parse_fault_spec("device_nan:node=x"),
               std::invalid_argument);
  EXPECT_THROW(fi::parse_fault_spec("device_nan:frob=1"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Typed failures from injected faults (serial engine).
// ---------------------------------------------------------------------------

TEST_F(FaultTolerance, PoolExhaustionYieldsMemoryCap) {
  const auto net = make_net(24, 100 + seed_);
  const auto opt = base_options();

  auto ref_model = make_model(net);
  const auto ref = solve_statistical_insertion(net, ref_model, opt);
  ASSERT_TRUE(ref.ok()) << ref.error().message();

  fi::arm("term_pool_alloc:after=" + std::to_string(10 + 7 * seed_));
  auto poisoned_model = make_model(net);
  const auto failed = solve_statistical_insertion(net, poisoned_model, opt);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, solve_code::memory_cap);
  EXPECT_GE(fi::fired_count(fi::fault_point::term_pool_alloc), 1u);

  // The fault's blast radius ends with the failed call: a disarmed re-solve
  // on the same thread (same recycled thread-local arena) is bit-identical
  // to a never-faulted run.
  fi::disarm();
  auto clean_model = make_model(net);
  const auto again = solve_statistical_insertion(net, clean_model, opt);
  ASSERT_TRUE(again.ok()) << again.error().message();
  expect_identical(*ref, *again);
}

TEST_F(FaultTolerance, NanPoisonedDeviceTripsNonfiniteCheck) {
  const auto net = make_net(16, 3);
  auto opt = base_options();
  opt.check_nonfinite = true;  // release builds default it off

  const auto node = static_cast<tree::node_id>(1 + seed_ % 5);
  fi::arm("device_nan:node=" + std::to_string(node));
  auto model = make_model(net);
  const auto out = solve_statistical_insertion(net, model, opt);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, solve_code::nonfinite_value);
  EXPECT_EQ(out.error().node, node);  // caught at the seal of the poisoned node
  EXPECT_GE(fi::fired_count(fi::fault_point::device_nan), 1u);
}

TEST_F(FaultTolerance, InjectedDeadlineReportsTrippingNode) {
  const auto net = make_net(20, 9);
  const auto node = static_cast<tree::node_id>(1 + seed_ % 7);
  fi::arm("deadline_at_node:node=" + std::to_string(node));
  auto model = make_model(net);
  const auto out = solve_statistical_insertion(net, model, base_options());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, solve_code::deadline_exceeded);
  EXPECT_EQ(out.error().node, node);
  EXPECT_NE(out.error().detail.find("injected"), std::string::npos);
}

TEST_F(FaultTolerance, RealDeadlineYieldsTypedError) {
  const auto net = make_net(40, 21);
  auto opt = base_options();
  opt.max_wall_seconds = 1e-9;  // expired by the first node boundary
  auto model = make_model(net);
  const auto out = solve_statistical_insertion(net, model, opt);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, solve_code::deadline_exceeded);
  EXPECT_NE(out.error().detail.find("max_wall_seconds"), std::string::npos);
}

TEST_F(FaultTolerance, ExternalCancelTokenStopsTheSolve) {
  const auto net = make_net(30, 5);
  cancel_token cancel;
  cancel.request_stop();
  auto model = make_model(net);
  const auto out =
      solve_statistical_insertion(net, model, base_options(), &cancel);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, solve_code::cancelled);
}

TEST_F(FaultTolerance, ArenaBytesCapYieldsMemoryCap) {
  const auto net = make_net(60, 13);
  auto opt = base_options();
  opt.max_arena_bytes = 1;  // any recycled term storage trips it
  auto model = make_model(net);
  const auto out = solve_statistical_insertion(net, model, opt);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, solve_code::memory_cap);
  EXPECT_NE(out.error().detail.find("max_arena_bytes"), std::string::npos);
}

TEST_F(FaultTolerance, MidWaveCancellationStopsSiblingWorkers) {
  const auto net = make_net(80, 17);
  const auto node = static_cast<tree::node_id>(2 + seed_ % 9);
  fi::arm("cancel_wave:node=" + std::to_string(node));
  thread_pool pool{4};
  auto model = make_model(net);
  const auto out =
      solve_parallel_insertion(net, model, base_options(), pool);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, solve_code::cancelled);
  EXPECT_GE(fi::fired_count(fi::fault_point::cancel_wave), 1u);
}

// ---------------------------------------------------------------------------
// Structured validation.
// ---------------------------------------------------------------------------

TEST_F(FaultTolerance, InvalidOptionsNameTheOffendingField) {
  const auto net = make_net(8, 1);
  auto model = make_model(net);

  auto opt = base_options();
  opt.root_percentile = 1.5;
  auto out = solve_statistical_insertion(net, model, opt);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, solve_code::invalid_options);
  EXPECT_NE(out.error().detail.find("root_percentile"), std::string::npos);

  opt = base_options();
  opt.library = {};
  out = solve_statistical_insertion(net, model, opt);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, solve_code::invalid_options);
  EXPECT_NE(out.error().detail.find("library"), std::string::npos);
}

TEST_F(FaultTolerance, InvalidTreeIsTypedNotThrown) {
  const tree::routing_tree sinkless{{0.0, 0.0}};
  auto model = make_model(sinkless);
  const auto out =
      solve_statistical_insertion(sinkless, model, base_options());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, solve_code::invalid_tree);
}

// ---------------------------------------------------------------------------
// Graceful degradation.
// ---------------------------------------------------------------------------

TEST_F(FaultTolerance, RetryDeterministicFallsBackToCornerRule) {
  // 4P's cross-product merge blows through a small list cap on this net; the
  // linear corner rule fits comfortably, so the retry must rescue the run.
  const auto net = make_net(24, 31);
  auto opt = base_options(pruning_kind::four_param);
  opt.max_list_size = 64;
  opt.degrade = degrade_policy::retry_deterministic;

  auto model = make_model(net);
  const auto out = solve_statistical_insertion(net, model, opt);
  ASSERT_TRUE(out.ok()) << out.error().message();
  EXPECT_EQ(out->path, solve_path::corner_fallback);
  EXPECT_GT(out->num_buffers, 0u);

  // Without the policy the same run is a typed candidate_cap failure.
  opt.degrade = degrade_policy::none;
  auto model2 = make_model(net);
  const auto failed = solve_statistical_insertion(net, model2, opt);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, solve_code::candidate_cap);
}

TEST_F(FaultTolerance, BestPartialNeverFails) {
  // max_candidates = 1 defeats the primary rule *and* the corner retry; the
  // unbuffered evaluation is the last resort and cannot trip a cap.
  const auto net = make_net(20, 41);
  auto opt = base_options();
  opt.max_candidates = 1;
  opt.degrade = degrade_policy::best_partial;

  auto model = make_model(net);
  const auto out = solve_statistical_insertion(net, model, opt);
  ASSERT_TRUE(out.ok()) << out.error().message();
  EXPECT_EQ(out->path, solve_path::unbuffered_fallback);
  EXPECT_EQ(out->num_buffers, 0u);
  EXPECT_TRUE(std::isfinite(out->root_rat.mean()));
}

TEST_F(FaultTolerance, DegradedParallelRunsAreThreadCountInvariant) {
  // Degraded retries run on the serial engine, so a parallel caller gets the
  // same fallback answer at any thread count.
  const auto net = make_net(24, 31);
  auto opt = base_options(pruning_kind::four_param);
  opt.max_list_size = 64;
  opt.degrade = degrade_policy::retry_deterministic;

  std::optional<stat_result> first;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    thread_pool pool{threads};
    auto model = make_model(net);
    const auto out = solve_parallel_insertion(net, model, opt, pool);
    ASSERT_TRUE(out.ok()) << out.error().message();
    EXPECT_EQ(out->path, solve_path::corner_fallback);
    if (!first.has_value()) {
      first = *out;
    } else {
      expect_identical(*first, *out);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-net fault isolation in the batch solver.
// ---------------------------------------------------------------------------

batch_job generated_job(std::size_t sinks) {
  batch_job job;
  tree::random_tree_options g;
  g.num_sinks = sinks;
  g.criticality_balance = 0.5;
  job.generate = g;
  job.options = base_options();
  return job;
}

TEST_F(FaultTolerance, BatchIsolatesAThrowingJob) {
  std::vector<batch_job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(generated_job(30));

  batch_solver::config cfg;
  cfg.num_threads = 4;
  cfg.batch_seed = 77;

  batch_solver reference{cfg};
  const auto clean = reference.solve_outcomes(jobs);
  ASSERT_EQ(clean.size(), jobs.size());
  for (const auto& slot : clean) ASSERT_TRUE(slot.ok());

  const std::size_t victim = seed_ % jobs.size();
  fi::arm("batch_job_throw:job=" + std::to_string(victim));
  batch_solver faulted{cfg};
  const auto outcomes = faulted.solve_outcomes(jobs);
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "job " << i);
    if (i == victim) {
      ASSERT_FALSE(outcomes[i].ok());
      EXPECT_EQ(outcomes[i].error().code, solve_code::internal);
      EXPECT_NE(outcomes[i].error().detail.find("injected"),
                std::string::npos);
    } else {
      // The sibling jobs' results are untouched by the faulted slot.
      ASSERT_TRUE(outcomes[i].ok());
      expect_identical(clean[i]->result, outcomes[i]->result);
    }
  }
}

TEST_F(FaultTolerance, BatchPerNetStatusesAreThreadCountInvariant) {
  // One healthy job, one deadline trip, one candidate-cap trip, one rescued
  // by best_partial: the per-slot codes and paths must not depend on the
  // worker count, and healthy slots must stay bit-identical.
  std::vector<batch_job> jobs;
  jobs.push_back(generated_job(30));
  jobs.push_back(generated_job(30));
  jobs[1].options.max_wall_seconds = 1e-9;
  jobs.push_back(generated_job(30));
  jobs[2].options.max_candidates = 40;
  jobs.push_back(generated_job(30));
  jobs[3].options.max_candidates = 1;
  jobs[3].options.degrade = degrade_policy::best_partial;

  std::vector<std::vector<solve_outcome<batch_result>>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    batch_solver::config cfg;
    cfg.num_threads = threads;
    cfg.batch_seed = 99;
    batch_solver solver{cfg};
    runs.push_back(solver.solve_outcomes(jobs));
  }

  for (const auto& run : runs) {
    ASSERT_EQ(run.size(), jobs.size());
    EXPECT_TRUE(run[0].ok());
    ASSERT_FALSE(run[1].ok());
    EXPECT_EQ(run[1].error().code, solve_code::deadline_exceeded);
    ASSERT_FALSE(run[2].ok());
    EXPECT_EQ(run[2].error().code, solve_code::candidate_cap);
    ASSERT_TRUE(run[3].ok());
    EXPECT_EQ(run[3]->result.path, solve_path::unbuffered_fallback);
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    SCOPED_TRACE(::testing::Message() << "thread config " << r);
    expect_identical(runs[0][0]->result, runs[r][0]->result);
    expect_identical(runs[0][3]->result, runs[r][3]->result);
  }
}

TEST_F(FaultTolerance, BatchCancellationMarksUnstartedJobs) {
  std::vector<batch_job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(generated_job(20));

  cancel_token cancel;
  cancel.request_stop();  // before the batch starts: fully deterministic
  batch_solver solver{batch_solver::config{2, 5}};
  const auto outcomes = solver.solve_outcomes(jobs, &cancel);
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (const auto& slot : outcomes) {
    ASSERT_FALSE(slot.ok());
    EXPECT_EQ(slot.error().code, solve_code::cancelled);
  }
}

}  // namespace
}  // namespace vabi::core
