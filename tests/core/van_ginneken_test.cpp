#include "core/van_ginneken.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "tree/generators.hpp"

namespace vabi::core {
namespace {

det_options small_options(timing::buffer_library lib) {
  det_options o;
  o.wire = timing::wire_model{};
  o.library = std::move(lib);
  o.driver_res_ohm = 150.0;
  return o;
}

TEST(VanGinneken, ChainMatchesBruteForce) {
  tree::chain_options co;
  co.length_um = 8000.0;
  co.segments = 8;
  co.sink_cap_pf = 0.05;
  const auto t = tree::make_chain(co);
  const auto options = small_options(timing::single_buffer_library());
  const auto dp = run_van_ginneken(t, options);
  const auto bf = brute_force_insertion(t, options);
  EXPECT_NEAR(dp.root_rat_ps, bf.root_rat_ps, 1e-9);
  EXPECT_GT(dp.num_buffers, 0u);  // 8 mm really needs repeaters
}

TEST(VanGinneken, SmallRandomTreeMatchesBruteForceMultiBuffer) {
  tree::random_tree_options to;
  to.num_sinks = 5;  // 9 positions
  to.die_side_um = 6000.0;
  to.seed = 17;
  to.sink_cap_min_pf = 0.03;
  to.sink_cap_max_pf = 0.08;
  const auto t = tree::make_random_tree(to);
  timing::buffer_library lib{{
      {"b1", 0.0234, 36.4, 1000.0},
      {"b2", 0.0468, 32.0, 500.0},
  }};
  const auto options = small_options(lib);
  const auto dp = run_van_ginneken(t, options);
  const auto bf = brute_force_insertion(t, options);
  EXPECT_NEAR(dp.root_rat_ps, bf.root_rat_ps, 1e-9);
}

class VanGinnekenOptimality : public ::testing::TestWithParam<int> {};

TEST_P(VanGinnekenOptimality, MatchesBruteForceOnRandomTopologies) {
  tree::random_tree_options to;
  to.num_sinks = 4;  // 7 positions
  to.die_side_um = 5000.0;
  to.seed = 1000 + static_cast<std::uint64_t>(GetParam());
  to.sink_cap_min_pf = 0.02;
  to.sink_cap_max_pf = 0.06;
  const auto t = tree::make_random_tree(to);
  const auto options = small_options(timing::single_buffer_library());
  const auto dp = run_van_ginneken(t, options);
  const auto bf = brute_force_insertion(t, options);
  EXPECT_NEAR(dp.root_rat_ps, bf.root_rat_ps, 1e-9) << "seed " << to.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VanGinnekenOptimality, ::testing::Range(0, 15));

TEST(VanGinneken, AssignmentReproducesReportedRat) {
  tree::random_tree_options to;
  to.num_sinks = 120;
  to.die_side_um = 6000.0;
  to.seed = 5;
  const auto t = tree::make_random_tree(to);
  const auto options = small_options(timing::standard_library());
  const auto dp = run_van_ginneken(t, options);
  const auto eval = timing::evaluate_buffered_tree(
      t, options.wire, options.library, dp.assignment, options.driver_res_ohm);
  EXPECT_NEAR(eval.root_rat_ps, dp.root_rat_ps, 1e-6);
}

TEST(VanGinneken, BuffersImproveLongNets) {
  tree::chain_options co;
  co.length_um = 10000.0;
  co.segments = 20;
  const auto t = tree::make_chain(co);
  const auto options = small_options(timing::single_buffer_library());
  const auto dp = run_van_ginneken(t, options);
  timing::buffer_assignment none(t.num_nodes());
  const auto unbuffered = timing::evaluate_buffered_tree(
      t, options.wire, options.library, none, options.driver_res_ohm);
  EXPECT_GT(dp.root_rat_ps, unbuffered.root_rat_ps);
}

TEST(VanGinneken, MoreBufferTypesNeverHurt) {
  tree::random_tree_options to;
  to.num_sinks = 60;
  to.seed = 9;
  const auto t = tree::make_random_tree(to);
  const auto one = run_van_ginneken(t, small_options(timing::single_buffer_library()));
  const auto three = run_van_ginneken(t, small_options(timing::standard_library()));
  EXPECT_GE(three.root_rat_ps, one.root_rat_ps - 1e-9);
}

TEST(VanGinneken, StatsArePopulated) {
  tree::random_tree_options to;
  to.num_sinks = 50;
  to.seed = 2;
  const auto t = tree::make_random_tree(to);
  const auto r = run_van_ginneken(t, small_options(timing::standard_library()));
  EXPECT_GT(r.stats.candidates_created, 0u);
  EXPECT_GT(r.stats.peak_list_size, 0u);
  EXPECT_GT(r.stats.merge_pairs, 0u);
  EXPECT_GE(r.stats.wall_seconds, 0.0);
  EXPECT_FALSE(r.stats.aborted);
}

TEST(VanGinneken, RejectsEmptyLibrary) {
  const auto t = tree::make_chain({});
  det_options o;
  EXPECT_THROW(run_van_ginneken(t, o), std::invalid_argument);
}

TEST(BruteForce, RejectsLargeTrees) {
  tree::random_tree_options to;
  to.num_sinks = 30;
  const auto t = tree::make_random_tree(to);
  EXPECT_THROW(
      brute_force_insertion(t, small_options(timing::single_buffer_library())),
      std::invalid_argument);
}

}  // namespace
}  // namespace vabi::core
