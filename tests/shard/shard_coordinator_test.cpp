// Supervision tests of the sharded multi-process batch coordinator: the
// merged result of an N-worker run is hash-identical to a single-process
// solve, resume recovers completed jobs without re-solving them, and every
// supervision path -- spawn failure, a wedged worker, dropped heartbeats,
// an exhausted restart budget -- converges to a complete, bit-identical
// merge. Fork-safety note: every test body is effectively single-threaded
// at the moment run() forks (batch_solver pools and the serve daemon are
// scoped and joined), the same discipline crash_recovery_test.cpp uses.
#include "shard/shard_coordinator.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "../core/batch_hash_test_util.hpp"
#include "core/parallel.hpp"
#include "serve/server.hpp"
#include "testing/fault_injection.hpp"
#include "timing/buffer_library.hpp"

namespace vabi::shard {
namespace {

using core::test_util::hash_outcomes;

constexpr std::uint64_t k_seed = 33;

std::vector<core::batch_job> small_jobs(std::size_t n = 8,
                                        std::size_t sinks = 16) {
  std::vector<core::batch_job> jobs(n);
  for (auto& job : jobs) {
    tree::random_tree_options g;
    g.num_sinks = sinks;
    job.generate = g;
    job.options.library = timing::standard_library();
  }
  return jobs;
}

std::uint64_t reference_hash(const std::vector<core::batch_job>& jobs) {
  core::batch_solver::config cfg;
  cfg.num_threads = 1;
  cfg.batch_seed = k_seed;
  core::batch_solver solver{cfg};
  return hash_outcomes(solver.solve_outcomes(jobs));
}

class ShardCoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/vabi-shard-test-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    testing::disarm();
    std::filesystem::remove_all(dir_);
  }

  coordinator_options base_options(std::size_t workers = 3) {
    coordinator_options o;
    o.num_workers = workers;
    o.journal_dir = dir_;
    o.batch_seed = k_seed;
    // Fast supervision for tests: quick beats, quick verdicts, quick respawn.
    o.heartbeat_interval_ms = 5.0;
    o.heartbeat_timeout_ms = 250.0;
    o.restart_backoff_base_ms = 1.0;
    o.restart_backoff_max_ms = 20.0;
    return o;
  }

  std::string dir_;
};

TEST_F(ShardCoordinatorTest, MergedResultHashEqualsSingleProcess) {
  const auto jobs = small_jobs();
  const std::uint64_t want = reference_hash(jobs);

  shard_coordinator coord(base_options(3));
  auto out = coord.run(jobs);
  ASSERT_TRUE(out.ok()) << out.error().message();

  EXPECT_EQ(hash_outcomes(out->merged.slots), want);
  EXPECT_EQ(out->jobs_solved_by_workers, jobs.size());
  EXPECT_EQ(out->jobs_recovered, 0u);
  EXPECT_EQ(out->jobs_solved_inline, 0u);
  EXPECT_EQ(out->restarts_total, 0u);
  EXPECT_GE(out->merged.shards_read, 3u);  // one shard per worker slot
  // Exactly-once accounting: every job solved exactly once, somewhere.
  std::uint64_t by_workers = 0;
  for (const auto& w : out->workers) by_workers += w.jobs_completed;
  EXPECT_EQ(by_workers, jobs.size());
}

TEST_F(ShardCoordinatorTest, ResumeRecoversEverythingAndResolvesNothing) {
  const auto jobs = small_jobs();
  const std::uint64_t want = reference_hash(jobs);

  {
    shard_coordinator coord(base_options(2));
    auto first = coord.run(jobs);
    ASSERT_TRUE(first.ok()) << first.error().message();
  }

  auto opts = base_options(2);
  opts.resume = true;
  shard_coordinator coord(opts);
  auto out = coord.run(jobs);
  ASSERT_TRUE(out.ok()) << out.error().message();

  EXPECT_EQ(out->jobs_recovered, jobs.size());
  EXPECT_EQ(out->jobs_solved_by_workers, 0u);
  EXPECT_EQ(out->jobs_solved_inline, 0u);
  EXPECT_EQ(hash_outcomes(out->merged.slots), want);
}

TEST_F(ShardCoordinatorTest, SpawnFailureConsumesBudgetAndSurvivorsFinish) {
  const auto jobs = small_jobs();
  const std::uint64_t want = reference_hash(jobs);

  // Slot 0 can never fork; its budget burns down and the other slots (or the
  // inline fallback) absorb its share of the fingerprint space.
  testing::arm("worker_spawn_fail:node=0");
  auto opts = base_options(3);
  opts.restart_budget = 2;
  shard_coordinator coord(opts);
  auto out = coord.run(jobs);
  ASSERT_TRUE(out.ok()) << out.error().message();

  EXPECT_EQ(out->workers_retired, 1u);
  EXPECT_EQ(out->workers[0].jobs_completed, 0u);
  EXPECT_EQ(out->workers[0].restarts, 2u);
  EXPECT_EQ(hash_outcomes(out->merged.slots), want);
}

TEST_F(ShardCoordinatorTest, HungWorkerIsKilledAndBatchStillMerges) {
  const auto jobs = small_jobs();
  const std::uint64_t want = reference_hash(jobs);

  // Slot 1 wedges on its first command, every incarnation: heartbeats stop,
  // the timeout SIGKILLs it, backoff respawns it. The survivors steal its
  // queue meanwhile, so the batch must merge bit-identically regardless of
  // whether the wedged slot ever gets another command.
  testing::arm("worker_hang:node=1");
  auto opts = base_options(3);
  opts.restart_budget = 1;
  shard_coordinator coord(opts);
  auto out = coord.run(jobs);
  ASSERT_TRUE(out.ok()) << out.error().message();

  EXPECT_GE(out->restarts_total, 1u);
  EXPECT_GE(out->workers[1].restarts, 1u);
  EXPECT_EQ(hash_outcomes(out->merged.slots), want);
}

TEST_F(ShardCoordinatorTest, DroppedHeartbeatsNeverLoseDurableWork) {
  const auto jobs = small_jobs();
  const std::uint64_t want = reference_hash(jobs);

  // Slot 0's heartbeats all vanish. Its job_done events still reset the
  // silence clock, so it makes progress; once idle it looks hung and is
  // killed -- and every record it journaled must be recovered, not
  // re-solved.
  testing::arm("heartbeat_drop:node=0");
  shard_coordinator coord(base_options(3));
  auto out = coord.run(jobs);
  ASSERT_TRUE(out.ok()) << out.error().message();

  EXPECT_EQ(hash_outcomes(out->merged.slots), want);
  std::uint64_t by_workers = 0;
  for (const auto& w : out->workers) by_workers += w.jobs_completed;
  EXPECT_EQ(out->jobs_recovered + by_workers + out->jobs_solved_inline,
            jobs.size());
}

TEST_F(ShardCoordinatorTest, AllSlotsRetiredFallsBackToInlineSolving) {
  const auto jobs = small_jobs(4);
  const std::uint64_t want = reference_hash(jobs);

  // No worker ever comes up; the coordinator must still deliver the batch.
  testing::arm("worker_spawn_fail");
  auto opts = base_options(2);
  opts.restart_budget = 1;
  shard_coordinator coord(opts);
  auto out = coord.run(jobs);
  ASSERT_TRUE(out.ok()) << out.error().message();

  EXPECT_EQ(out->workers_retired, 2u);
  EXPECT_EQ(out->jobs_solved_by_workers, 0u);
  EXPECT_EQ(out->jobs_solved_inline, jobs.size());
  EXPECT_EQ(hash_outcomes(out->merged.slots), want);
}

TEST_F(ShardCoordinatorTest, TornShardRecordsAreRepairedInline) {
  const auto jobs = small_jobs();
  const std::uint64_t want = reference_hash(jobs);

  // Shard 0's checkpoints all write torn images (the fault selector is the
  // shard index): worker 0's job_done events arrive, but its *last* record
  // is never durable. Completion is defined by what is on disk, so the
  // repair pass must detect the torn record and re-solve it inline.
  testing::arm("shard_write_short:node=0");
  shard_coordinator coord(base_options(2));
  auto out = coord.run(jobs);
  ASSERT_TRUE(out.ok()) << out.error().message();

  EXPECT_GE(out->jobs_solved_inline, 1u);
  EXPECT_EQ(out->jobs_solved_by_workers + out->jobs_solved_inline,
            jobs.size());
  EXPECT_EQ(hash_outcomes(out->merged.slots), want);
}

TEST_F(ShardCoordinatorTest, ObserverSeesLifecycleEvents) {
  const auto jobs = small_jobs(4);
  std::size_t spawned = 0, ready = 0, done = 0, ticks = 0;
  shard_coordinator coord(base_options(2));
  auto out = coord.run(jobs, [&](const coordinator_event& ev) {
    switch (ev.what) {
      case coordinator_event::kind::spawned: ++spawned; break;
      case coordinator_event::kind::ready: ++ready; break;
      case coordinator_event::kind::job_done: ++done; break;
      case coordinator_event::kind::tick: ++ticks; break;
      default: break;
    }
  });
  ASSERT_TRUE(out.ok()) << out.error().message();
  EXPECT_EQ(spawned, 2u);
  EXPECT_EQ(ready, 2u);
  EXPECT_EQ(done, jobs.size());
  EXPECT_GT(ticks, 0u);
}

TEST_F(ShardCoordinatorTest, RemoteModeMatchesSingleProcess) {
  // Worker slots are sessions against a real vabi_serve daemon over a unix
  // socket; the shards they journal locally must merge to the same bits as
  // the fork-mode / single-process solve of the same submit.
  serve::serve_options so;
  so.unix_socket_path = dir_ + "/serve.sock";
  so.journal_dir = dir_ + "/serve-journals";
  std::filesystem::create_directories(so.journal_dir);
  serve::solver_daemon daemon(std::move(so));
  ASSERT_EQ(daemon.start(), "");

  serve::submit_msg submit;
  submit.batch_seed = k_seed;
  for (std::size_t i = 0; i < 6; ++i) {
    serve::wire_job j;
    j.num_sinks = 12;
    submit.jobs.push_back(j);
  }

  const std::string shard_dir = dir_ + "/shards";
  std::filesystem::create_directories(shard_dir);
  auto opts = base_options(2);
  opts.journal_dir = shard_dir;
  shard_coordinator coord(opts);
  auto out = coord.run_remote(submit, dir_ + "/serve.sock");
  ASSERT_TRUE(out.ok()) << out.error().message();
  EXPECT_EQ(out->jobs_solved_by_workers, submit.jobs.size());

  // Reference: the same submit solved locally through the same wire-option
  // mapping, which is exactly what merge_shards validated against.
  core::stat_options options;
  layout::process_model_config model_config;
  ASSERT_EQ(serve::map_wire_options(submit.options, options, model_config),
            "");
  std::vector<core::batch_job> jobs(submit.jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].options = options;
    jobs[i].model = model_config;
    tree::random_tree_options g;
    g.num_sinks = static_cast<std::size_t>(submit.jobs[i].num_sinks);
    g.die_side_um = submit.jobs[i].die_side_um;
    g.criticality_balance = submit.jobs[i].criticality_balance;
    g.seed = 0;
    jobs[i].generate = g;
  }
  core::batch_solver::config cfg;
  cfg.num_threads = 1;
  cfg.batch_seed = k_seed;
  core::batch_solver solver{cfg};
  EXPECT_EQ(hash_outcomes(out->merged.slots),
            hash_outcomes(solver.solve_outcomes(jobs)));
}

}  // namespace
}  // namespace vabi::shard
