// Kill/restart chaos harness for the shard coordinator. Two matrices:
//
//   ShardChaos.WorkerSigkillMatrix -- the coordinator stays up while its
//   worker processes are SIGKILLed at measured points spread across the
//   batch's real runtime (the observer's tick callback issues the kill from
//   the coordinator's own thread, so no second thread races the forks). The
//   coordinator must restart/retire its way to a merged result that is
//   hash-identical to a single-process solve, with exactly-once accounting:
//   every job solved exactly once, jobs already durable in a dead worker's
//   shard recovered rather than re-solved.
//
//   ShardChaos.CoordinatorSigkillThenResumeMatrix -- the *coordinator* is
//   SIGKILLed (taking its workers with it via PDEATHSIG), then a fresh
//   coordinator resumes from the orphaned shard directory. The resumed merge
//   must equal the unkilled reference, and the resumed run must not re-solve
//   anything the corpse made durable.
//
// Environment knobs (CI):
//   VABI_KILL_POINTS   kill points per matrix (default 10; CI runs >= 20)
//   VABI_JOURNAL_DIR   keep offending shard directories here on failure for
//                      artifact upload instead of deleting them.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "../core/batch_hash_test_util.hpp"
#include "core/parallel.hpp"
#include "shard/shard_coordinator.hpp"
#include "timing/buffer_library.hpp"

namespace vabi::shard {
namespace {

using core::test_util::hash_outcomes;

constexpr std::uint64_t k_seed = 55;

std::vector<core::batch_job> chaos_jobs() {
  std::vector<core::batch_job> jobs(10);
  for (auto& job : jobs) {
    tree::random_tree_options g;
    g.num_sinks = 60;
    job.generate = g;
    job.options.library = timing::standard_library();
  }
  return jobs;
}

std::size_t kill_points() {
  if (const char* env = std::getenv("VABI_KILL_POINTS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 10;
}

std::string base_dir() {
  if (const char* dir = std::getenv("VABI_JOURNAL_DIR")) return dir;
  return ::testing::TempDir();
}

/// Shard directory that survives test failure for CI artifact upload.
struct chaos_dir {
  std::string path;
  explicit chaos_dir(const std::string& name) {
    std::string b = base_dir();
    if (!b.empty() && b.back() != '/') b += '/';
    path = b + "shard_chaos_" + name;
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~chaos_dir() {
    if (::testing::Test::HasFailure()) {
      std::cerr << "[shard_chaos] keeping shards for inspection: " << path
                << "\n";
      return;
    }
    // A SIGKILLed coordinator's workers die via PDEATHSIG a beat later, and
    // a checkpoint rename in flight can add/remove entries while remove_all
    // iterates -- use the non-throwing overload and retry until quiescent.
    std::error_code ec;
    for (int i = 0; i < 10; ++i) {
      std::filesystem::remove_all(path, ec);
      if (!ec) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
};

std::uint64_t reference_hash() {
  static const std::uint64_t hash = [] {
    core::batch_solver::config cfg;
    cfg.num_threads = 2;
    cfg.batch_seed = k_seed;
    core::batch_solver solver{cfg};
    return hash_outcomes(solver.solve_outcomes(chaos_jobs()));
  }();
  return hash;
}

coordinator_options chaos_options(const std::string& dir) {
  coordinator_options o;
  o.num_workers = 3;
  o.journal_dir = dir;
  o.batch_seed = k_seed;
  o.restart_budget = 100;  // chaos may kill the same slot many times
  o.heartbeat_interval_ms = 5.0;
  o.heartbeat_timeout_ms = 500.0;
  o.restart_backoff_base_ms = 1.0;
  o.restart_backoff_max_ms = 10.0;
  return o;
}

/// Wall time of one unkilled sharded run, to spread kill points across the
/// coordinator's actual lifetime.
double sharded_run_seconds() {
  static const double seconds = [] {
    chaos_dir dir{"timing"};
    shard_coordinator coord(chaos_options(dir.path));
    const auto t0 = std::chrono::steady_clock::now();
    auto out = coord.run(chaos_jobs());
    EXPECT_TRUE(out.ok());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }();
  return seconds;
}

TEST(ShardChaos, WorkerSigkillMatrix) {
  const std::uint64_t want = reference_hash();
  const double full_seconds = sharded_run_seconds();
  const std::size_t points = kill_points();
  const auto jobs = chaos_jobs();

  for (std::size_t k = 0; k < points; ++k) {
    SCOPED_TRACE("kill point " + std::to_string(k) + "/" +
                 std::to_string(points));
    chaos_dir dir{"worker_" + std::to_string(k)};
    // Spread kills across [0, ~120%] of the measured runtime; rotate which
    // slot dies so every worker is a victim at some point.
    const double frac =
        1.2 * static_cast<double>(k) / static_cast<double>(points);
    const auto kill_after = std::chrono::duration<double>(frac * full_seconds);
    const std::size_t victim_slot = k % 3;

    auto opts = chaos_options(dir.path);
    shard_coordinator coord(opts);
    std::vector<long> pids(opts.num_workers, -1);
    const auto t0 = std::chrono::steady_clock::now();
    bool killed = false;
    auto out = coord.run(jobs, [&](const coordinator_event& ev) {
      if (ev.what == coordinator_event::kind::spawned ||
          ev.what == coordinator_event::kind::restarted) {
        pids[ev.slot] = ev.pid;
      }
      if (ev.what == coordinator_event::kind::died) pids[ev.slot] = -1;
      if (!killed && ev.what == coordinator_event::kind::tick &&
          std::chrono::steady_clock::now() - t0 >= kill_after) {
        killed = true;
        // Prefer the scheduled victim; fall back to any live worker.
        long pid = pids[victim_slot];
        if (pid <= 0) {
          for (long p : pids) {
            if (p > 0) pid = p;
          }
        }
        if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGKILL);
      }
    });
    ASSERT_TRUE(out.ok()) << out.error().message();

    EXPECT_EQ(hash_outcomes(out->merged.slots), want)
        << "sharded merge diverged after SIGKILL";
    // Exactly-once: every job solved once; a kill may cost restarts but
    // never a duplicate or a lost job.
    std::uint64_t by_workers = 0;
    for (const auto& w : out->workers) by_workers += w.jobs_completed;
    EXPECT_EQ(by_workers + out->jobs_solved_inline + out->jobs_recovered,
              jobs.size());
    if (HasFailure()) break;  // keep this kill point's shards
  }
}

TEST(ShardChaos, CoordinatorSigkillThenResumeMatrix) {
  const std::uint64_t want = reference_hash();
  const double full_seconds = sharded_run_seconds();
  const std::size_t points = kill_points();
  const auto jobs = chaos_jobs();

  for (std::size_t k = 0; k < points; ++k) {
    SCOPED_TRACE("kill point " + std::to_string(k) + "/" +
                 std::to_string(points));
    chaos_dir dir{"coord_" + std::to_string(k)};
    const double frac =
        1.2 * static_cast<double>(k) / static_cast<double>(points);
    const auto delay = std::chrono::microseconds(
        static_cast<long>(frac * full_seconds * 1e6));

    // The whole coordinator runs in a forked child (which then forks its own
    // workers -- it is single-threaded at that point), and is SIGKILLed
    // mid-flight. PDEATHSIG reaps the worker grandchildren.
    const pid_t pid = fork();
    ASSERT_NE(pid, -1) << "fork failed";
    if (pid == 0) {
      shard_coordinator coord(chaos_options(dir.path));
      auto out = coord.run(chaos_jobs());
      std::_Exit(out.ok() ? 0 : 3);
    }
    std::this_thread::sleep_for(delay);
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    // PDEATHSIG has SIGKILL pending on the corpse's workers by the time
    // waitpid returns, but a worker blocked inside an fsync/rename finishes
    // that syscall before dying -- give the grandchildren a beat so a late
    // checkpoint rename cannot race the resumed run's shard scan (which
    // would read as duplicate coverage).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Resume from whatever the corpse left: shards from dead workers, torn
    // tails included. Nothing durable may be re-solved.
    auto opts = chaos_options(dir.path);
    opts.resume = true;
    shard_coordinator coord(opts);
    auto out = coord.run(jobs);
    ASSERT_TRUE(out.ok()) << out.error().message();
    EXPECT_EQ(hash_outcomes(out->merged.slots), want)
        << "resumed sharded merge diverged (recovered " << out->jobs_recovered
        << " jobs)";
    std::uint64_t by_workers = 0;
    for (const auto& w : out->workers) by_workers += w.jobs_completed;
    EXPECT_EQ(by_workers + out->jobs_solved_inline + out->jobs_recovered,
              jobs.size());
    if (HasFailure()) break;
  }
}

}  // namespace
}  // namespace vabi::shard
