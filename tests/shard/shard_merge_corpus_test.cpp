// Corruption corpus for the shard merger: hand-crafted shard directories --
// truncated tails, bit-flipped mid-shard records, the same job in two
// shards, a missing shard, headers from a different batch -- each of which
// must come back as a *typed* shard_mismatch / journal_corrupt, never a
// wrong merge or UB. Frames are spliced from the real codec
// (core::journal_detail), so the corpus stays valid as the format evolves.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/parallel.hpp"
#include "shard/shard_merge.hpp"
#include "timing/buffer_library.hpp"

namespace vabi::shard {
namespace {

constexpr std::uint64_t k_seed = 77;

std::vector<core::batch_job> corpus_jobs() {
  std::vector<core::batch_job> jobs(4);
  for (auto& job : jobs) {
    tree::random_tree_options g;
    g.num_sinks = 10;
    job.generate = g;
    job.options.library = timing::standard_library();
  }
  return jobs;
}

/// The four genuine records a single-process run would journal, solved once
/// per suite; crafted shards splice these real frames.
const std::vector<core::journal_record>& solved_records() {
  static const std::vector<core::journal_record> records = [] {
    const auto jobs = corpus_jobs();
    const batch_fingerprints fps = fingerprint_batch(jobs, k_seed);
    std::vector<core::journal_record> out;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      core::prepared_job setup = core::prepare_batch_job(jobs[i], i, k_seed);
      auto solved = core::solve_statistical_insertion(
          *setup.net, *setup.model, jobs[i].options, nullptr);
      core::journal_record rec;
      rec.job_index = i;
      rec.fingerprint = fps.per_job[i];
      rec.ok = solved.ok();
      if (solved.ok()) {
        rec.num_sources = setup.model->space().size();
        rec.result = std::move(*solved);
        rec.result.root_rat.own_terms();
      }
      out.push_back(std::move(rec));
    }
    return out;
  }();
  return records;
}

class ShardMergeCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/vabi-shard-corpus-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  core::journal_header header() const {
    const auto jobs = corpus_jobs();
    core::journal_header h;
    h.has_batch_seed = true;
    h.batch_seed = k_seed;
    h.num_jobs = jobs.size();
    h.jobs_fingerprint = fingerprint_batch(jobs, k_seed).combined;
    return h;
  }

  core::shard_info shard(std::uint32_t index) const {
    core::shard_info si;
    si.shard_index = index;
    si.shard_count = 2;
    si.parent_fingerprint = header().jobs_fingerprint;
    return si;
  }

  /// Writes `shard-<index>.vjl`: magic + header frame + shard frame + one
  /// record frame per listed job.
  std::string write_shard(std::uint32_t index, const core::shard_info& si,
                          const std::vector<std::size_t>& job_indices,
                          bool with_shard_frame = true) {
    std::vector<std::uint8_t> image;
    const char magic[] = "VABIJRNL";
    image.insert(image.end(), magic, magic + 8);
    const auto hdr = core::journal_detail::encode_header_frame(header());
    image.insert(image.end(), hdr.begin(), hdr.end());
    if (with_shard_frame) {
      const auto sf = core::journal_detail::encode_shard_frame(si);
      image.insert(image.end(), sf.begin(), sf.end());
    }
    for (const std::size_t j : job_indices) {
      const auto rf =
          core::journal_detail::encode_record_frame(solved_records()[j]);
      image.insert(image.end(), rf.begin(), rf.end());
    }
    char name[32];
    std::snprintf(name, sizeof name, "shard-%05u.vjl", index);
    const std::string path = dir_ + "/" + name;
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
    return path;
  }

  core::solve_outcome<merged_batch> merge() {
    return merge_shards(corpus_jobs(), k_seed, dir_);
  }

  std::string dir_;
};

TEST_F(ShardMergeCorpusTest, CraftedShardsMergeCleanly) {
  write_shard(0, shard(0), {0, 1});
  write_shard(1, shard(1), {2, 3});
  auto out = merge();
  ASSERT_TRUE(out.ok()) << out.error().message();
  EXPECT_EQ(out->shards_read, 2u);
  EXPECT_EQ(out->records_merged, 4u);
  for (const auto& slot : out->slots) EXPECT_TRUE(slot.ok());
}

TEST_F(ShardMergeCorpusTest, TruncatedShardTailLosesAJobTyped) {
  write_shard(0, shard(0), {0, 1});
  const std::string path = write_shard(1, shard(1), {2, 3});
  // Tear the last record's frame: torn tails are dropped (exactly like
  // single-journal resume), which leaves job 3 covered by no shard -- a
  // typed merge failure, never a silent partial result.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  auto out = merge();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, core::solve_code::shard_mismatch);
  EXPECT_NE(out.error().detail.find("covered by no shard"), std::string::npos)
      << out.error().detail;
}

TEST_F(ShardMergeCorpusTest, BitFlippedMidShardRecordIsJournalCorrupt) {
  write_shard(0, shard(0), {0, 1});
  const std::string path = write_shard(1, shard(1), {2, 3});
  // Flip one byte inside the *first* record frame, after magic (8) + header
  // frame + shard frame: frames after the damage are intact, so this is
  // mid-log corruption -- unskippable, reported typed with the file named.
  const auto hdr = core::journal_detail::encode_header_frame(header());
  const auto sf = core::journal_detail::encode_shard_frame(shard(1));
  const std::uint64_t at = 8 + hdr.size() + sf.size() + 16;  // in rec2 payload
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(at));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(static_cast<std::streamoff>(at));
  f.write(&b, 1);
  f.close();
  auto out = merge();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, core::solve_code::journal_corrupt);
  EXPECT_NE(out.error().detail.find(path), std::string::npos)
      << out.error().detail;
}

TEST_F(ShardMergeCorpusTest, SameJobInTwoShardsIsTypedOverlap) {
  write_shard(0, shard(0), {0, 1});
  write_shard(1, shard(1), {1, 2, 3});  // job 1 solved "twice"
  auto out = merge();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, core::solve_code::shard_mismatch);
  EXPECT_NE(out.error().detail.find("more than one shard"), std::string::npos)
      << out.error().detail;
}

TEST_F(ShardMergeCorpusTest, MissingShardLeavesJobsUncovered) {
  write_shard(0, shard(0), {0, 1});
  // Shard 1 (jobs 2 and 3) never made it to the directory.
  auto out = merge();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, core::solve_code::shard_mismatch);
  EXPECT_NE(out.error().detail.find("covered by no shard"), std::string::npos)
      << out.error().detail;
}

TEST_F(ShardMergeCorpusTest, ForeignParentFingerprintIsRejected) {
  write_shard(0, shard(0), {0, 1});
  core::shard_info foreign = shard(1);
  foreign.parent_fingerprint ^= 0xdeadbeefULL;  // some other batch's shards
  write_shard(1, foreign, {2, 3});
  auto out = merge();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, core::solve_code::shard_mismatch);
  EXPECT_NE(out.error().detail.find("different batch"), std::string::npos)
      << out.error().detail;
}

TEST_F(ShardMergeCorpusTest, DuplicateShardIndexIsRejected) {
  write_shard(0, shard(0), {0, 1});
  write_shard(1, shard(0), {2, 3});  // second file claims index 0 too
  auto out = merge();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, core::solve_code::shard_mismatch);
  EXPECT_NE(out.error().detail.find("duplicate shard index"),
            std::string::npos)
      << out.error().detail;
}

TEST_F(ShardMergeCorpusTest, PlainJournalAmongShardsIsRejected) {
  write_shard(0, shard(0), {0, 1});
  // A shard-named file that is a valid *plain* journal (no shard frame):
  // somebody pointed the merge at a single-process journal directory.
  write_shard(1, shard(1), {2, 3}, /*with_shard_frame=*/false);
  auto out = merge();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, core::solve_code::shard_mismatch);
  EXPECT_NE(out.error().detail.find("no shard header"), std::string::npos)
      << out.error().detail;
}

}  // namespace
}  // namespace vabi::shard
